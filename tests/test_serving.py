"""Tests for the multi-tenant serving front end (repro.serving).

Covers the tentpole pieces — arrival processes, tenant sessions, the
round-based simulator over ``MulticoreMachine.run_segmented``, fair-share
arbitration in the memory controllers, SLO reporting — plus the PR's
bugfix satellites:

* template-cache coherence when cached traces replay interleaved with
  another tenant's UPDATE (a cached read after a concurrent write must
  miss and see the new value);
* kernel-replay eligibility rejecting stream-tagged / multi-tenant
  state, with a fallback-equivalence oracle;
* starvation counters staying exact under cross-stream bypasses
  (stateful hypothesis model).
"""

import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)

from repro.core.addressing import Orientation
from repro.cpu.machine import Machine
from repro.cpu.multicore import MulticoreMachine
from repro.cpu.replaykernel import kernel_eligible
from repro.cpu.tracebuffer import TraceBuffer
from repro.geometry import SMALL_RCNVM_GEOMETRY
from repro.harness.serve import build_tenants, run_serving, tenant_mix
from repro.harness.systems import SMALL_CACHE_CONFIG, build_system
from repro.imdb.database import Database
from repro.memsim.controller import ChannelController
from repro.memsim.request import MemRequest
from repro.memsim.timing import LPDDR3_800_RCNVM
from repro.serving import (
    ClosedLoop,
    OpenLoop,
    ServingSimulator,
    TenantSpec,
    make_arrivals,
)
from repro.serving.slo import fairness_ratio, slo_table


# -- arrival processes ---------------------------------------------------------
class TestArrivals:
    def test_open_loop_anchors_to_previous_arrival(self):
        process = OpenLoop(mean_gap=100, seed=1)
        first = process.next_arrival(0, 0)
        second = process.next_arrival(first, 999_999)
        assert second > first  # completion time ignored

    def test_closed_loop_anchors_to_previous_completion(self):
        process = ClosedLoop(mean_gap=100, seed=1)
        arrival = process.next_arrival(0, 5_000)
        assert arrival > 5_000

    def test_seeded_determinism(self):
        a = [OpenLoop(50, seed=7).next_arrival(i * 100, 0) for i in range(20)]
        b = [OpenLoop(50, seed=7).next_arrival(i * 100, 0) for i in range(20)]
        assert a == b
        c = [OpenLoop(50, seed=8).next_arrival(i * 100, 0) for i in range(20)]
        assert a != c

    def test_minimum_one_cycle_gap(self):
        process = OpenLoop(mean_gap=1, seed=0)
        prev = 0
        for _ in range(200):
            nxt = process.next_arrival(prev, 0)
            assert nxt >= prev + 1
            prev = nxt

    def test_make_arrivals_validates(self):
        assert make_arrivals("open", 10, 0).kind == "open"
        assert make_arrivals("closed", 10, 0).kind == "closed"
        with pytest.raises(ValueError):
            make_arrivals("batch", 10, 0)
        with pytest.raises(ValueError):
            make_arrivals("open", 0, 0)


class TestTenantSpec:
    def test_rejects_stream_zero(self):
        with pytest.raises(ValueError):
            TenantSpec(name="t", stream=0, statements=[("SELECT", {}, None)])

    def test_rejects_unknown_arrival(self):
        with pytest.raises(ValueError):
            TenantSpec(name="t", stream=1, statements=[("SELECT", {}, None)],
                       arrival="bursty")

    def test_rejects_empty_mix(self):
        with pytest.raises(ValueError):
            TenantSpec(name="t", stream=1, statements=[])


# -- the serving simulator -----------------------------------------------------
def _serving_db(scale=0.05, **sched_kwargs):
    from repro.workloads.suite import build_benchmark_database

    memory = build_system("RC-NVM", small=True, **sched_kwargs)
    db = build_benchmark_database(memory, scale=scale,
                                  cache_config=SMALL_CACHE_CONFIG)
    machine = MulticoreMachine(memory, n_cores=4, l1_kib=4, llc_kib=128)
    return db, machine


def _four_tenants(n_statements=4, mean_gap=20_000):
    return build_tenants(4, arrival="mixed", mean_gap=mean_gap,
                         n_statements=n_statements, seed=1)


class TestServingSimulator:
    def test_four_tenants_open_and_closed_all_complete(self):
        db, machine = _serving_db()
        report = ServingSimulator(db, machine, _four_tenants()).run()
        assert len(report.tenants) == 4
        kinds = {t["arrival"] for t in report.tenants}
        assert kinds == {"open", "closed"}
        for tenant in report.tenants:
            assert tenant["completed"] == 4
            assert tenant["p50_cycles"] > 0
            assert tenant["p99_cycles"] >= tenant["p50_cycles"]
            assert tenant["throughput_per_mcycle"] > 0
        assert report.statements == 16
        assert report.makespan > 0

    def test_deterministic_across_runs(self):
        reports = []
        for _ in range(2):
            db, machine = _serving_db()
            reports.append(
                ServingSimulator(db, machine, _four_tenants()).run().to_dict()
            )
        assert reports[0] == reports[1]

    def test_no_tenant_starved_fairness_bounded(self):
        db, machine = _serving_db()
        report = ServingSimulator(db, machine, _four_tenants()).run()
        assert report.fairness != float("inf")
        assert report.fairness <= 3.0

    def test_admission_control_sheds_under_overload(self):
        db, machine = _serving_db()
        # Open-loop tenants flooding at ~1-cycle gaps against depth 2.
        tenants = build_tenants(4, arrival="open", mean_gap=1,
                                n_statements=12, seed=3)
        sim = ServingSimulator(db, machine, tenants, admission_depth=2)
        report = sim.run()
        assert report.shed > 0
        for tenant in report.tenants:
            assert tenant["completed"] + tenant["shed"] == tenant["issued"]

    def test_per_stream_tallies_cover_all_tenants(self):
        db, machine = _serving_db()
        report = ServingSimulator(db, machine, _four_tenants()).run()
        assert set(report.streams) == {1, 2, 3, 4}
        for stream_stats in report.streams.values():
            assert stream_stats["accesses"] > 0
            assert 0.0 <= stream_stats["hit_rate"] <= 1.0

    def test_rejects_duplicate_streams_and_mismatched_memory(self):
        db, machine = _serving_db()
        tenants = _four_tenants()
        dup = tenants[:3] + [TenantSpec(
            name="dup", stream=1, statements=tenants[0].statements)]
        with pytest.raises(ValueError):
            ServingSimulator(db, machine, dup)
        other_db, _ = _serving_db()
        with pytest.raises(ValueError):
            ServingSimulator(other_db, machine, tenants)

    def test_slo_table_renders_every_tenant(self):
        db, machine = _serving_db()
        report = ServingSimulator(db, machine, _four_tenants()).run()
        text = slo_table(report.tenants)
        for tenant in report.tenants:
            assert tenant["tenant"] in text

    def test_fairness_ratio_flags_starvation(self):
        reports = [{"throughput_per_mcycle": 10.0},
                   {"throughput_per_mcycle": 0.0}]
        assert fairness_ratio(reports) == float("inf")
        assert fairness_ratio([]) == 1.0
        assert fairness_ratio(
            [{"throughput_per_mcycle": 0.0}, {"throughput_per_mcycle": 0.0}]
        ) == 1.0


class TestServeHarness:
    def test_run_serving_beats_global_fifo_hit_rate(self):
        result = run_serving(scale=0.05, n_tenants=4, mean_gap=10_000,
                             n_statements=4, small=True)
        # The fair-share arbiter must not cost row-buffer locality
        # relative to the global-FIFO baseline (the opportunistic-hit
        # path is what keeps this true).
        assert result["hit_rate_delta"] >= -0.005
        assert result["report"]["fairness"] <= 3.0

    def test_tenant_mix_includes_writes_by_default(self):
        mix = tenant_mix(0)
        assert any(sql.startswith("UPDATE") for sql, _p, _h in mix)
        assert not any(
            sql.startswith("UPDATE") for sql, _p, _h in tenant_mix(0, writes=False)
        )


# -- run_segmented -------------------------------------------------------------
class TestRunSegmented:
    def _db(self):
        memory = build_system("RC-NVM", small=True)
        db = Database(memory, cache_config=SMALL_CACHE_CONFIG)
        db.create_table("t", [("f1", 8), ("f2", 8)], layout="row")
        db.insert_many("t", [(i, i * 3) for i in range(64)])
        return db

    def _trace(self, db):
        plan = db.plan("SELECT SUM(f2) FROM t WHERE f1 > x", params={"x": 5})
        _result, trace = db.executor.execute(plan)
        return trace

    def test_segment_ends_recorded_per_token(self):
        db = self._db()
        trace = self._trace(db)
        db.reset_timing()
        machine = MulticoreMachine(db.memory, n_cores=2, l1_kib=4, llc_kib=128)
        result = machine.run_segmented(
            [[(trace, 1, "a"), (trace, 1, "b")], [(trace, 2, "c")]]
        )
        assert set(result.segment_ends) == {"a", "b", "c"}
        # Segments on one core finish in queue order.
        assert result.segment_ends["b"] > result.segment_ends["a"]

    def test_base_clocks_offsets_the_time_domain(self):
        db = self._db()
        trace = self._trace(db)
        db.reset_timing()
        machine = MulticoreMachine(db.memory, n_cores=1, l1_kib=4, llc_kib=128)
        base = machine.run_segmented([[(trace, 1, "x")]]).segment_ends["x"]
        db.reset_timing()
        machine = MulticoreMachine(db.memory, n_cores=1, l1_kib=4, llc_kib=128)
        offset = machine.run_segmented(
            [[(trace, 1, "x")]], base_clocks=10_000
        ).segment_ends["x"]
        assert offset == base + 10_000

    def test_callback_fires_in_completion_order(self):
        db = self._db()
        trace = self._trace(db)
        db.reset_timing()
        machine = MulticoreMachine(db.memory, n_cores=2, l1_kib=4, llc_kib=128)
        seen = []
        machine.run_segmented(
            [[(trace, 1, "a")], [(trace, 2, "b")]],
            on_segment=lambda core, token, clock: seen.append((token, clock)),
        )
        assert {token for token, _clock in seen} == {"a", "b"}


# -- satellite 1: template cache vs. interleaved tenants -----------------------
class TestTemplateCacheMultiTenant:
    def _db(self):
        memory = build_system("RC-NVM", small=True)
        db = Database(memory, cache_config=SMALL_CACHE_CONFIG,
                      template_cache=True)
        db.create_table("t", [("f1", 8), ("f2", 8)], layout="row")
        db.insert_many("t", [(i, i * 3) for i in range(32)])
        return db

    SQL = "SELECT SUM(f2) FROM t WHERE f1 > x"

    def test_cached_read_misses_after_concurrent_tenant_update(self):
        db = self._db()
        cache = db.template_cache
        first = db.execute(self.SQL, params={"x": 0}, simulate=False, stream=1)
        assert cache.stats.misses == 1
        again = db.execute(self.SQL, params={"x": 0}, simulate=False, stream=1)
        assert cache.stats.hits == 1  # warm: same tenant, no writers
        assert again.result.value == first.result.value
        # A different tenant's UPDATE lands between tenant 1's statements.
        db.execute("UPDATE t SET f2 = 1000 WHERE f1 = 3",
                   simulate=False, stream=2)
        hits_before = cache.stats.hits
        after = db.execute(self.SQL, params={"x": 0}, simulate=False, stream=1)
        # The content-version check must reject the cached binding: a hit
        # here would serve the stale pre-UPDATE sum.
        assert cache.stats.hits == hits_before
        assert cache.stats.invalidations >= 1
        expected = sum(i * 3 for i in range(32) if i > 0) - 9 + 1000
        assert after.result.value == expected

    def test_cached_trace_replay_on_multicore_keeps_stream_tag(self):
        db = self._db()
        warm = db.execute(self.SQL, params={"x": 0}, simulate=False, stream=1)
        cached = db.execute(self.SQL, params={"x": 0}, simulate=False, stream=7)
        assert db.template_cache.stats.hits == 1
        db.reset_timing()
        db.memory.enable_stream_tracking()
        machine = MulticoreMachine(db.memory, n_cores=1, l1_kib=4, llc_kib=128)
        # The shared cached trace replays under tenant 7's tag: the tag
        # must ride the replay, not the stored trace.
        machine.run_segmented([[(cached.trace, 7, "q")]])
        streams = db.memory.stream_snapshot()
        assert set(streams) <= {0, 7}  # 0 = untagged writebacks only
        assert streams[7]["accesses"] > 0
        assert warm.result.rows == cached.result.rows


# -- satellite 2: kernel-replay gate under multi-tenancy -----------------------
class TestKernelGateMultiTenant:
    def _db(self, replay_mode="batched"):
        memory = build_system("RC-NVM", small=True)
        db = Database(memory, cache_config=SMALL_CACHE_CONFIG,
                      replay_mode=replay_mode)
        db.create_table("t", [("f1", 8), ("f2", 8)], layout="row")
        db.insert_many("t", [(i, i * 3) for i in range(32)])
        return db

    def _fin(self, db):
        plan = db.plan("SELECT SUM(f2) FROM t WHERE f1 > x", params={"x": 10})
        _result, trace = db.executor.execute(plan)
        fin = trace.finalize()
        db.reset_timing()
        return fin

    def test_stream_tagged_trace_is_ineligible(self):
        db = self._db()
        fin = self._fin(db)
        assert kernel_eligible(db.machine, fin)  # untagged: eligible
        fin.stream = 3
        assert not kernel_eligible(db.machine, fin)
        fin.stream = 0
        # Replay-time override rejects too, even on an untagged trace.
        assert not kernel_eligible(db.machine, fin, stream=5)

    def test_stream_tracking_controller_is_ineligible(self):
        db = self._db()
        fin = self._fin(db)
        db.memory.enable_stream_tracking()
        assert not kernel_eligible(db.machine, fin)
        db.memory.enable_stream_tracking(False)
        assert kernel_eligible(db.machine, fin)

    def test_queued_foreign_stream_state_is_ineligible(self):
        db = self._db()
        fin = self._fin(db)
        ctrl = db.memory.controllers[0]
        req = MemRequest(channel=0, rank=0, bank=0, subarray=0, row=0, col=0,
                         orientation=Orientation.ROW, is_write=False,
                         arrival=0, stream=2)
        ctrl.submit(req)
        assert not kernel_eligible(db.machine, fin)
        ctrl.drain()
        ctrl.reset()
        db.reset_timing()
        assert kernel_eligible(db.machine, fin)

    def test_kernel_mode_falls_back_to_batched_equivalence(self):
        """Equivalence oracle: a tagged trace through a kernel-mode
        machine must time identically to the batched path (the gate
        forces the fallback)."""
        kernel_db = self._db(replay_mode="kernel")
        fin = self._fin(kernel_db)
        fin.stream = 4
        kernel_cycles = kernel_db.machine.run(fin).cycles

        batched_db = self._db(replay_mode="batched")
        fin2 = self._fin(batched_db)
        fin2.stream = 4
        batched_cycles = batched_db.machine.run(fin2).cycles
        assert kernel_cycles == batched_cycles

    def test_untagged_kernel_still_used(self):
        db = self._db(replay_mode="kernel")
        fin = self._fin(db)
        assert kernel_eligible(db.machine, fin)


# -- satellite 3: starvation counters under cross-stream bypass ----------------
def _recount_starved(queues, age_cap):
    return sum(
        1 for queue in queues for entry in queue if entry.bypassed >= age_cap
    )


class StarvationCounterModel(RuleBasedStateMachine):
    """Multi-stream traffic through one controller, checking after every
    step that the class starvation counters exactly equal a recount over
    the queues — no leak (counter > reality, which would force needless
    cap picks) and no loss (counter < reality, which would starve the
    age-cap bypass)."""

    def __init__(self):
        super().__init__()
        self.pending = []
        self.now = 0

    @initialize(
        age_cap=st.integers(1, 5),
        quantum=st.integers(1, 4),
        page_policy=st.sampled_from(ChannelController.PAGE_POLICIES),
    )
    def setup(self, age_cap, quantum, page_policy):
        self.controller = ChannelController(
            SMALL_RCNVM_GEOMETRY, LPDDR3_800_RCNVM, supports_column=True,
            queue_depth=6, policy="frfcfs", page_policy=page_policy,
            age_cap=age_cap, stream_quantum=quantum, track_streams=True,
            adaptive_threshold=2,
        )

    @rule(
        bank=st.integers(0, 3),
        row=st.integers(0, 3),
        col=st.integers(0, 3),
        stream=st.integers(0, 3),
        is_write=st.booleans(),
        gap=st.integers(0, 40),
    )
    def submit(self, bank, row, col, stream, is_write, gap):
        self.now += gap
        req = MemRequest(
            channel=0, rank=0, bank=bank, subarray=0, row=row, col=col,
            orientation=Orientation.ROW, is_write=is_write,
            arrival=self.now, stream=stream,
        )
        self.controller.submit(req)
        self.pending.append(req)

    @precondition(lambda self: self.pending)
    @rule(data=st.data())
    def resolve_one(self, data):
        index = data.draw(st.integers(0, len(self.pending) - 1))
        req = self.pending.pop(index)
        completion = self.controller.completion_of(req)
        assert completion is not None

    @rule()
    def drain(self):
        self.controller.drain()
        self.pending.clear()
        assert not self.controller.pending
        assert self.controller._starved_reads == 0
        assert self.controller._starved_writes == 0

    @invariant()
    def counters_match_recount(self):
        if not hasattr(self, "controller"):
            return  # before @initialize
        ctrl = self.controller
        assert ctrl._starved_reads == _recount_starved(
            ctrl.read_queues, ctrl.age_cap
        )
        assert ctrl._starved_writes == _recount_starved(
            ctrl.write_queues, ctrl.age_cap
        )
        assert ctrl._starved_reads >= 0
        assert ctrl._starved_writes >= 0
        # The age-cap bound survives fair-share bypassing.
        assert ctrl.stats.max_bypass <= ctrl.age_cap
        # Per-class per-stream pending counts mirror the queues.
        for streams, queues in (
            (ctrl._read_streams, ctrl.read_queues),
            (ctrl._write_streams, ctrl.write_queues),
        ):
            recount = {}
            for queue in queues:
                for entry in queue:
                    key = entry.req.stream
                    recount[key] = recount.get(key, 0) + 1
            assert streams == recount


TestStarvationCounters = StarvationCounterModel.TestCase
TestStarvationCounters.settings = settings(
    max_examples=40, stateful_step_count=40, deadline=None
)


# -- fair-share arbiter unit behavior ------------------------------------------
class TestFairShareArbiter:
    def _controller(self, **kwargs):
        config = dict(
            queue_depth=16, policy="frfcfs", page_policy="open",
            age_cap=8, stream_quantum=2, track_streams=True,
        )
        config.update(kwargs)
        return ChannelController(
            SMALL_RCNVM_GEOMETRY, LPDDR3_800_RCNVM, supports_column=True,
            **config,
        )

    def _req(self, bank, row, col, stream, arrival=0):
        return MemRequest(channel=0, rank=0, bank=bank, subarray=0, row=row,
                          col=col, orientation=Orientation.ROW, is_write=False,
                          arrival=arrival, stream=stream)

    def test_rejects_bad_quantum(self):
        with pytest.raises(ValueError):
            self._controller(stream_quantum=0)

    def test_two_streams_rotate(self):
        ctrl = self._controller()
        for i in range(6):
            ctrl.submit(self._req(0, 0, i, stream=1))
            ctrl.submit(self._req(0, 1, i, stream=2))
        ctrl.drain()
        assert ctrl.stats.stream_rotations > 0
        snapshot = ctrl.stream_snapshot()
        assert snapshot[1]["reads"] == 6
        assert snapshot[2]["reads"] == 6

    def test_single_stream_path_spends_no_credit(self):
        ctrl = self._controller()
        for i in range(8):
            ctrl.submit(self._req(0, 0, i, stream=1))
        ctrl.drain()
        assert ctrl.stats.stream_rotations == 0
        assert ctrl.stats.cross_stream_bypasses == 0
        assert ctrl._stream_credit[1] == ctrl.stream_quantum

    def test_opportunistic_hit_skips_conflicting_turn(self):
        ctrl = self._controller(stream_quantum=1)
        # Stream 1 keeps hitting row 0; stream 2 queues conflicts on row 1.
        for i in range(8):
            ctrl.submit(self._req(0, 0, i, stream=1))
            ctrl.submit(self._req(0, 1, i, stream=2))
        ctrl.drain()
        assert ctrl.stats.opportunistic_stream_hits > 0
        # Both streams fully served regardless.
        snapshot = ctrl.stream_snapshot()
        assert snapshot[1]["reads"] == snapshot[2]["reads"] == 8

    def test_stream_snapshot_totals_match_global_stats(self):
        ctrl = self._controller()
        for i in range(5):
            ctrl.submit(self._req(i % 4, i % 2, i, stream=1 + i % 3))
        ctrl.drain()
        snapshot = ctrl.stream_snapshot()
        assert sum(s["reads"] for s in snapshot.values()) == ctrl.stats.reads
        assert sum(s["buffer_hits"] for s in snapshot.values()) \
            == ctrl.stats.buffer_hits

    def test_reset_clears_fair_share_state(self):
        ctrl = self._controller()
        ctrl.submit(self._req(0, 0, 0, stream=1))
        ctrl.submit(self._req(0, 0, 1, stream=2))
        ctrl.drain()
        ctrl.reset()
        assert ctrl._stream_order == []
        assert ctrl._stream_credit == {}
        assert ctrl._read_streams == {}
        assert ctrl.stream_stats == {}


# -- system-level stream plumbing ----------------------------------------------
class TestStreamPlumbing:
    def test_database_threads_stream_to_tallies(self):
        memory = build_system("RC-NVM", small=True)
        db = Database(memory, cache_config=SMALL_CACHE_CONFIG)
        db.create_table("t", [("f1", 8), ("f2", 8)], layout="row")
        db.insert_many("t", [(i, i) for i in range(32)])
        memory.enable_stream_tracking()
        db.execute("SELECT SUM(f2) FROM t WHERE f1 > x", params={"x": 0},
                   stream=9)
        streams = memory.stream_snapshot()
        assert 9 in streams
        assert streams[9]["accesses"] > 0

    def test_stream_zero_untracked_streams_single_path(self):
        memory = build_system("RC-NVM", small=True)
        db = Database(memory, cache_config=SMALL_CACHE_CONFIG)
        db.create_table("t", [("f1", 8), ("f2", 8)], layout="row")
        db.insert_many("t", [(i, i) for i in range(32)])
        tagged = db.execute("SELECT SUM(f2) FROM t WHERE f1 > x",
                            params={"x": 0}, stream=3)
        untagged = db.execute("SELECT SUM(f2) FROM t WHERE f1 > x",
                              params={"x": 0})
        # One stream at a time: the fair-share arbiter must not perturb
        # single-stream timing regardless of the tag value.
        assert tagged.timing.cycles == untagged.timing.cycles
