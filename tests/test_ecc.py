"""SECDED ECC (paper Section 4.1's 72-bit bus): code and store."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.geometry import SMALL_RCNVM_GEOMETRY
from repro.imdb.physmem import PhysicalMemory
from repro.memsim import ecc


words = st.integers(0, (1 << 64) - 1)
positions = st.integers(0, ecc.CODEWORD_BITS - 1)


class TestCode:
    def test_codeword_width(self):
        assert ecc.encode((1 << 64) - 1) < (1 << ecc.CODEWORD_BITS)

    @given(data=words)
    @settings(max_examples=100)
    def test_clean_roundtrip(self, data):
        result = ecc.decode(ecc.encode(data))
        assert result.status is ecc.EccStatus.CLEAN
        assert result.data == data

    @given(data=words, position=positions)
    @settings(max_examples=200)
    def test_single_bit_corrected(self, data, position):
        corrupted = ecc.flip_bit(ecc.encode(data), position)
        result = ecc.decode(corrupted)
        assert result.status is ecc.EccStatus.CORRECTED
        assert result.data == data
        assert result.corrected_position == position

    @given(
        data=words,
        position_pair=st.tuples(positions, positions).filter(lambda p: p[0] != p[1]),
    )
    @settings(max_examples=200)
    def test_double_bit_detected(self, data, position_pair):
        codeword = ecc.encode(data)
        corrupted = ecc.flip_bit(ecc.flip_bit(codeword, position_pair[0]), position_pair[1])
        assert ecc.decode(corrupted).status is ecc.EccStatus.DETECTED

    @given(data=words)
    @settings(max_examples=100)
    def test_parity_pack_unpack(self, data):
        codeword = ecc.encode(data)
        assert ecc.unpack(data, ecc.pack_parity(codeword)) == codeword

    def test_flip_bit_bounds(self):
        with pytest.raises(ValueError):
            ecc.flip_bit(0, ecc.CODEWORD_BITS)

    def test_encode_bounds(self):
        with pytest.raises(ValueError):
            ecc.encode(1 << 64)
        with pytest.raises(ValueError):
            ecc.encode(-1)


class TestEccStore:
    @pytest.fixture
    def store(self):
        return ecc.EccStore(PhysicalMemory(SMALL_RCNVM_GEOMETRY))

    def test_write_read(self, store):
        store.write(0, 1, 2, -12345)
        assert store.read(0, 1, 2) == -12345
        assert store.stats.corrected == 0

    def test_single_fault_corrected_and_repaired(self, store):
        store.write(0, 1, 2, 999)
        store.inject_fault(0, 1, 2, bit=17)
        assert store.read(0, 1, 2) == 999
        assert store.stats.corrected == 1
        # Repaired in place: a second read is clean.
        assert store.read(0, 1, 2) == 999
        assert store.stats.corrected == 1

    def test_parity_bit_fault_corrected(self, store):
        store.write(0, 3, 3, 42)
        store.inject_fault(0, 3, 3, bit=0)  # the overall parity bit
        assert store.read(0, 3, 3) == 42
        assert store.stats.corrected == 1

    def test_double_fault_raises(self, store):
        store.write(0, 1, 2, 7)
        store.inject_fault(0, 1, 2, bit=10)
        store.inject_fault(0, 1, 2, bit=40)
        with pytest.raises(ecc.UncorrectableError):
            store.read(0, 1, 2)
        assert store.stats.detected == 1

    def test_lazy_encoding_of_existing_data(self):
        physmem = PhysicalMemory(SMALL_RCNVM_GEOMETRY)
        physmem.write_cell(0, 5, 5, 1234)  # written before ECC attaches
        store = ecc.EccStore(physmem)
        assert store.read(0, 5, 5) == 1234

    def test_negative_values_roundtrip(self, store):
        store.write(0, 0, 0, np.int64(-1))
        store.inject_fault(0, 0, 0, bit=33)
        assert store.read(0, 0, 0) == -1
