"""SECDED ECC (paper Section 4.1's 72-bit bus): code and store."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.geometry import SMALL_RCNVM_GEOMETRY
from repro.imdb.physmem import PhysicalMemory
from repro.memsim import ecc


words = st.integers(0, (1 << 64) - 1)
positions = st.integers(0, ecc.CODEWORD_BITS - 1)


class TestCode:
    def test_codeword_width(self):
        assert ecc.encode((1 << 64) - 1) < (1 << ecc.CODEWORD_BITS)

    @given(data=words)
    @settings(max_examples=100)
    def test_clean_roundtrip(self, data):
        result = ecc.decode(ecc.encode(data))
        assert result.status is ecc.EccStatus.CLEAN
        assert result.data == data

    @given(data=words, position=positions)
    @settings(max_examples=200)
    def test_single_bit_corrected(self, data, position):
        corrupted = ecc.flip_bit(ecc.encode(data), position)
        result = ecc.decode(corrupted)
        assert result.status is ecc.EccStatus.CORRECTED
        assert result.data == data
        assert result.corrected_position == position

    @given(
        data=words,
        position_pair=st.tuples(positions, positions).filter(lambda p: p[0] != p[1]),
    )
    @settings(max_examples=200)
    def test_double_bit_detected(self, data, position_pair):
        codeword = ecc.encode(data)
        corrupted = ecc.flip_bit(ecc.flip_bit(codeword, position_pair[0]), position_pair[1])
        assert ecc.decode(corrupted).status is ecc.EccStatus.DETECTED

    @given(data=words)
    @settings(max_examples=100)
    def test_parity_pack_unpack(self, data):
        codeword = ecc.encode(data)
        assert ecc.unpack(data, ecc.pack_parity(codeword)) == codeword

    def test_flip_bit_bounds(self):
        with pytest.raises(ValueError):
            ecc.flip_bit(0, ecc.CODEWORD_BITS)

    def test_encode_bounds(self):
        with pytest.raises(ValueError):
            ecc.encode(1 << 64)
        with pytest.raises(ValueError):
            ecc.encode(-1)


class TestEccStore:
    @pytest.fixture
    def store(self):
        return ecc.EccStore(PhysicalMemory(SMALL_RCNVM_GEOMETRY))

    def test_write_read(self, store):
        store.write(0, 1, 2, -12345)
        assert store.read(0, 1, 2) == -12345
        assert store.stats.corrected == 0

    def test_single_fault_corrected_and_repaired(self, store):
        store.write(0, 1, 2, 999)
        store.inject_fault(0, 1, 2, bit=17)
        assert store.read(0, 1, 2) == 999
        assert store.stats.corrected == 1
        # Repaired in place: a second read is clean.
        assert store.read(0, 1, 2) == 999
        assert store.stats.corrected == 1

    def test_parity_bit_fault_corrected(self, store):
        store.write(0, 3, 3, 42)
        store.inject_fault(0, 3, 3, bit=0)  # the overall parity bit
        assert store.read(0, 3, 3) == 42
        assert store.stats.corrected == 1

    def test_double_fault_raises(self, store):
        store.write(0, 1, 2, 7)
        store.inject_fault(0, 1, 2, bit=10)
        store.inject_fault(0, 1, 2, bit=40)
        with pytest.raises(ecc.UncorrectableError):
            store.read(0, 1, 2)
        assert store.stats.detected == 1

    def test_lazy_encoding_of_existing_data(self):
        physmem = PhysicalMemory(SMALL_RCNVM_GEOMETRY)
        physmem.write_cell(0, 5, 5, 1234)  # written before ECC attaches
        store = ecc.EccStore(physmem)
        assert store.read(0, 5, 5) == 1234

    def test_negative_values_roundtrip(self, store):
        store.write(0, 0, 0, np.int64(-1))
        store.inject_fault(0, 0, 0, bit=33)
        assert store.read(0, 0, 0) == -1


class TestExhaustiveSecded:
    """Satellite coverage: every flip pattern behaves as SECDED promises."""

    @pytest.mark.parametrize("data", [0, 1, (1 << 64) - 1, 0x0123456789ABCDEF])
    def test_all_72_single_flips_corrected(self, data):
        codeword = ecc.encode(data)
        for position in range(ecc.CODEWORD_BITS):
            result = ecc.decode(ecc.flip_bit(codeword, position))
            assert result.status is ecc.EccStatus.CORRECTED
            assert result.data == data
            assert result.corrected_position == position

    @given(data=words, first=positions, offset=st.integers(1, ecc.CODEWORD_BITS - 1))
    @settings(max_examples=300)
    def test_sampled_double_flips_detected(self, data, first, offset):
        second = (first + offset) % ecc.CODEWORD_BITS
        codeword = ecc.encode(data)
        corrupted = ecc.flip_bit(ecc.flip_bit(codeword, first), second)
        assert ecc.decode(corrupted).status is ecc.EccStatus.DETECTED

    @given(data=words)
    @settings(max_examples=200)
    def test_pack_unpack_roundtrip(self, data):
        codeword = ecc.encode(data)
        parity = ecc.pack_parity(codeword)
        assert 0 <= parity < 256
        assert ecc.unpack(data, parity) == codeword


class TestVectorizedKernels:
    """The NumPy scrub kernels must agree with the scalar code."""

    @given(data=st.lists(words, min_size=1, max_size=32))
    @settings(max_examples=50)
    def test_packed_parity_matches_scalar(self, data):
        grid = np.array(data, dtype=np.uint64).astype(np.int64).reshape(-1, 1)
        expected = [ecc.pack_parity(ecc.encode(word)) for word in data]
        assert ecc.packed_parity(grid).tolist() == [[e] for e in expected]

    @given(data=words, position=positions)
    @settings(max_examples=100)
    def test_classify_flags_exactly_the_corrupted_cell(self, data, position):
        clean_word = np.array([[np.uint64(data).astype(np.int64)]], dtype=np.int64)
        parity = ecc.packed_parity(clean_word)
        clean, _syndrome, _even = ecc.classify(clean_word, parity)
        assert clean.all()
        # Rebuild the corrupted (data, parity) pair the store would hold.
        corrupted = ecc.flip_bit(ecc.encode(data), position)
        bad_data = np.array([[np.int64(np.uint64(_data_of(corrupted)))]])
        bad_parity = np.array([[ecc.pack_parity(corrupted)]], dtype=np.int16)
        clean, _syndrome, _even = ecc.classify(bad_data, bad_parity)
        assert not clean.any()


def _data_of(codeword):
    """Extract the 64 data bits of a codeword (test-local helper)."""
    data = 0
    for j, position in enumerate(ecc._DATA_POSITIONS):
        data |= ((codeword >> position) & 1) << j
    return data


class TestScrubDeltas:
    """Regression: scrub must report per-sweep deltas, not lifetime totals."""

    @pytest.fixture
    def store(self):
        return ecc.EccStore(PhysicalMemory(SMALL_RCNVM_GEOMETRY))

    def test_scrub_reports_sweep_delta_not_lifetime(self, store):
        store.write(0, 1, 1, 111)
        store.write(0, 2, 2, 222)
        store.inject_fault(0, 1, 1, bit=5)
        store.inject_fault(0, 2, 2, bit=50)
        corrected, detected = store.scrub(0)
        assert (corrected, detected) == (2, 0)
        # The bug this pins down: a second sweep with no new faults used
        # to report the lifetime stats.corrected again instead of 0.
        corrected, detected = store.scrub(0)
        assert (corrected, detected) == (0, 0)
        assert store.stats.corrected == 2  # lifetime keeps accumulating

    def test_scrub_counts_detected_without_repairing(self, store):
        store.write(0, 4, 4, 99)
        store.inject_fault(0, 4, 4, bit=3)
        store.inject_fault(0, 4, 4, bit=60)
        corrected, detected = store.scrub(0)
        assert (corrected, detected) == (0, 1)
        # Still detected on the next sweep: scrub cannot fix doubles.
        assert store.scrub(0) == (0, 1)

    def test_sweep_lists_detected_cells(self, store):
        store.write(0, 6, 7, 1)
        store.inject_fault(0, 6, 7, bit=1)
        store.inject_fault(0, 6, 7, bit=2)
        result = store.sweep(0)
        assert result.detected_cells == [(6, 7)]
        assert result.cells == store.physmem.geometry.rows * store.physmem.geometry.cols

    def test_sweep_skips_unmaterialized_subarrays(self, store):
        result = store.sweep(3)
        assert result.cells == 0 and not store.physmem.is_materialized(3)

    def test_verify_run_corrects_singles_and_lists_doubles(self, store):
        for row in range(8):
            store.write(0, row, 5, row * 10)
        store.inject_fault(0, 2, 5, bit=9)        # single: corrected
        store.inject_fault(0, 6, 5, bit=9)        # double: detected
        store.inject_fault(0, 6, 5, bit=44)
        detected = store.verify_run(0, vertical=True, fixed=5, start=0, count=8)
        assert detected == [(6, 5)]
        assert store.read(0, 2, 5) == 20
        assert store.stats.corrected == 1
