"""Tests for the multi-tenant fuzz mode (repro.fuzz.tenants)."""

from repro.fuzz.grammar import CaseGenerator
from repro.fuzz.tenants import prefix_case, run_tenant_case, run_tenant_fuzz


def _case_with(kind, seed=0, tries=400):
    generator = CaseGenerator(seed)
    for index in range(tries):
        case = generator.case(index)
        if any(s.get("kind") == kind for s in case.statements):
            return case
    raise AssertionError(f"no generated case contained a {kind} statement")


class TestPrefixCase:
    def test_renames_tables_and_statement_references(self):
        case = _case_with("select")
        renamed = prefix_case(case, "t0")
        originals = {spec.name for spec in case.tables}
        for spec in renamed.tables:
            assert spec.name.startswith("t0")
        for stmt in renamed.statements:
            for key in ("table", "left", "right"):
                if key in stmt:
                    assert stmt[key] not in originals

    def test_renames_join_qualified_items(self):
        case = _case_with("join")
        renamed = prefix_case(case, "t1")
        for stmt in renamed.statements:
            if stmt.get("kind") != "join":
                continue
            for table, _field in stmt["items"]:
                assert table.startswith("t1")

    def test_original_case_untouched(self):
        case = _case_with("select")
        before = case.to_dict()
        prefix_case(case, "t9")
        assert case.to_dict() == before


class TestTenantOracle:
    def test_interleaved_tenants_match_solo_oracles(self):
        for index in range(4):
            problems, statements, _cases = run_tenant_case(
                seed=11, index=index, n_tenants=2
            )
            assert problems == [], problems
            assert statements > 0

    def test_three_tenants(self):
        problems, _statements, cases = run_tenant_case(
            seed=5, index=0, n_tenants=3
        )
        assert problems == []
        assert len(cases) == 3

    def test_report_aggregates(self):
        report = run_tenant_fuzz(seed=2, iterations=3, n_tenants=2)
        assert report.ok
        assert report.iterations == 3
        assert report.statements > 0

    def test_deterministic(self):
        first = run_tenant_case(seed=4, index=1, n_tenants=2)
        second = run_tenant_case(seed=4, index=1, n_tenants=2)
        assert first[0] == second[0]
        assert first[1] == second[1]
