"""Unit tests for the structure-of-arrays trace buffer."""

import numpy as np
import pytest

from repro.core.addressing import Coordinate, Orientation
from repro.cpu.trace import Access, Op
from repro.cpu.tracebuffer import (
    LINE_BARRIER,
    LINE_GATHER,
    LINE_PIN,
    LINE_UNPIN,
    LINE_WRITE,
    TraceBuffer,
)
from repro.cache.line import line_key


def _sample_accesses():
    return [
        Access(Op.READ, 0x0, size=8, gap=1),
        Access(Op.READ, 0x38, size=16, gap=3),  # straddles a line boundary
        Access(Op.WRITE, 0x100, size=8, gap=0, barrier=True),
        Access(Op.CREAD, 0x40, size=128, gap=2, pin=True),
        Access(Op.GATHER, 0x2000, size=64, gap=1,
               coord=Coordinate(0, 0, 0, 0, 3, 5)),
        Access(Op.UNPIN, 0x40, size=128, gap=0, orientation=Orientation.COLUMN),
    ]


def _same_access(a, b):
    return (
        a.op == b.op
        and a.address == b.address
        and a.size == b.size
        and a.gap == b.gap
        and a.barrier == b.barrier
        and a.pin == b.pin
        and a.coord == b.coord
        and a.orientation == b.orientation
    )


class TestListCompatibility:
    def test_roundtrip_through_append_and_iter(self):
        buffer = TraceBuffer()
        originals = _sample_accesses()
        for access in originals:
            buffer.append(access)
        assert len(buffer) == len(originals)
        for got, expected in zip(buffer, originals):
            assert _same_access(got, expected)

    def test_getitem_and_slice(self):
        buffer = TraceBuffer()
        buffer.extend(_sample_accesses())
        assert _same_access(buffer[2], _sample_accesses()[2])
        assert _same_access(buffer[-1], _sample_accesses()[-1])
        tail = buffer[4:]
        assert len(tail) == 2 and tail[0].op == Op.GATHER
        with pytest.raises(IndexError):
            buffer[len(buffer)]

    def test_iteration_sees_staged_appends(self):
        buffer = TraceBuffer()
        buffer.emit(int(Op.READ), 0x80)
        # No flush threshold reached: the access only exists in the
        # staging list, and must still be visible.
        assert len(buffer) == 1
        assert buffer[0].address == 0x80


class TestBulkOperations:
    def test_extend_concatenates_buffers_columnwise(self):
        left, right = TraceBuffer(), TraceBuffer()
        accesses = _sample_accesses()
        left.extend(accesses[:3])
        right.extend(accesses[3:])
        left.extend(right)
        assert len(left) == len(accesses)
        for got, expected in zip(left, accesses):
            assert _same_access(got, expected)
        # The gather coordinate moved over with rebased position.
        assert left[4].coord == Coordinate(0, 0, 0, 0, 3, 5)

    def test_extend_bulk_matches_scalar_emits(self):
        bulk, scalar = TraceBuffer(), TraceBuffer()
        addresses = np.arange(16, dtype=np.int64) * 64
        bulk.extend_bulk(int(Op.CREAD), addresses, 64, 1)
        for address in addresses:
            scalar.emit(int(Op.CREAD), int(address), 64, 1)
        assert len(bulk) == len(scalar)
        for a, b in zip(bulk, scalar):
            assert _same_access(a, b)

    def test_reads_to_writes(self):
        buffer = TraceBuffer()
        buffer.emit(int(Op.READ), 0x0)
        buffer.emit(int(Op.CREAD), 0x40)
        buffer.emit(int(Op.READ), 0x80)
        buffer.reads_to_writes(start=1)
        ops = [access.op for access in buffer]
        assert ops == [Op.READ, Op.CWRITE, Op.WRITE]


class TestFinalize:
    def test_line_splitting_and_keys(self):
        buffer = TraceBuffer()
        # 16 bytes starting 8 bytes before a line boundary: two lines.
        buffer.emit(int(Op.READ), 0x38, 16, 3)
        fin = buffer.finalize()
        assert fin.n_lines == 2
        keys = fin.line_key.tolist()
        assert keys == [
            line_key(0x38, Orientation.ROW),
            line_key(0x40, Orientation.ROW),
        ]
        # The inter-access gap is charged once, on the first line.
        assert fin.line_gap.tolist() == [3, 0]

    def test_write_word_masks_are_partial(self):
        buffer = TraceBuffer()
        buffer.emit(int(Op.WRITE), 0x10, 16, 1)  # words 2..3 of the line
        fin = buffer.finalize()
        assert fin.line_special.tolist() == [LINE_WRITE]
        assert fin.line_mask.tolist() == [0b00001100]

    def test_special_bits(self):
        buffer = TraceBuffer()
        buffer.extend(_sample_accesses())
        fin = buffer.finalize()
        specials = fin.line_special
        assert (specials[(fin.acc_op[fin.line_acc] == int(Op.GATHER))]
                & LINE_GATHER).all()
        assert (specials[(fin.acc_op[fin.line_acc] == int(Op.UNPIN))]
                & LINE_UNPIN).all()
        # Barrier marks only the access's first line.
        barrier_lines = (specials & LINE_BARRIER) != 0
        assert int(barrier_lines.sum()) == 1
        pin_lines = (specials & LINE_PIN) != 0
        assert int(pin_lines.sum()) == 2  # the 128-byte pinned cread

    def test_counters_exclude_unpins(self):
        buffer = TraceBuffer()
        buffer.extend(_sample_accesses())
        fin = buffer.finalize()
        assert fin.n_accesses == 5  # UNPIN is bookkeeping, not an access
        assert fin.n_writes == 1
        assert fin.n_reads == 4
        assert fin.has_column and fin.has_gather

    def test_finalize_is_cached_and_invalidated(self):
        buffer = TraceBuffer()
        buffer.emit(int(Op.READ), 0x0)
        first = buffer.finalize()
        assert buffer.finalize() is first
        buffer.emit(int(Op.READ), 0x40)
        assert buffer.finalize() is not first


class TestDecodeCaching:
    """Replaying a finalized trace repeatedly must decode line addresses
    exactly once per mapper — the regression these tests pin is decode
    work silently reappearing on the serving path's hot loop."""

    def _counted_mapper(self, monkeypatch, system="RC-NVM"):
        from repro.harness.systems import build_system

        mapper = build_system(system, small=True).mapper
        calls = []
        original = type(mapper).decode_fields
        monkeypatch.setattr(
            type(mapper), "decode_fields",
            lambda self, *a, **kw: calls.append(1) or original(self, *a, **kw),
        )
        return mapper, calls

    def test_decode_fields_called_once_per_mapper(self, monkeypatch):
        mapper, calls = self._counted_mapper(monkeypatch)
        buffer = TraceBuffer()
        buffer.extend(_sample_accesses())
        fin = buffer.finalize()
        arrays = fin.decoded_arrays_for(mapper)
        lists = fin.decoded_for(mapper)
        assert fin.decoded_arrays_for(mapper) is arrays
        assert fin.decoded_for(mapper) is lists
        assert len(calls) == 1
        for column, flat in zip(arrays, lists):
            assert column.tolist() == flat

    def test_repeat_replay_never_redecodes(self, monkeypatch):
        from repro.harness.systems import SMALL_CACHE_CONFIG, build_system
        from repro.imdb.database import Database

        memory = build_system("RC-NVM", small=True)
        db = Database(memory, cache_config=SMALL_CACHE_CONFIG)
        db.create_table("t", [("f1", 8)], layout="row")
        db.insert_many("t", [(i,) for i in range(32)])
        plan = db.plan("SELECT SUM(f1) FROM t")
        _result, buffer = db.executor.execute(plan)
        fin = buffer.finalize()
        calls = []
        original = type(memory.mapper).decode_fields
        monkeypatch.setattr(
            type(memory.mapper), "decode_fields",
            lambda self, *a, **kw: calls.append(1) or original(self, *a, **kw),
        )
        for mode in ("batched", "kernel", "batched"):
            db.replay_mode = mode
            db.reset_timing()
            db.machine.run(fin)
        assert len(calls) == 1


class TestTraceFileRoundtrip:
    def test_load_trace_buffer_matches_load_trace(self, tmp_path):
        from repro.cpu.tracefile import load_trace, load_trace_buffer, save_trace

        path = tmp_path / "trace.txt"
        save_trace(path, _sample_accesses())
        from_file = list(load_trace(path))
        buffered = load_trace_buffer(path)
        assert len(buffered) == len(from_file)
        for a, b in zip(buffered, from_file):
            assert _same_access(a, b)
