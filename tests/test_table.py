"""Table storage: loading, functional reads, runs, layouts."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import LayoutError
from repro.geometry import SMALL_RCNVM_GEOMETRY
from repro.imdb.allocator import SubarrayAllocator
from repro.imdb.chunks import IntraLayout
from repro.imdb.physmem import PhysicalMemory
from repro.imdb.schema import Schema
from repro.imdb.table import Table


def make_table(layout="row", fields=None, name="t"):
    physmem = PhysicalMemory(SMALL_RCNVM_GEOMETRY)
    allocator = SubarrayAllocator(SMALL_RCNVM_GEOMETRY)
    schema = Schema(fields or [("a", 8), ("b", 8), ("c", 8)])
    return Table(name, schema, IntraLayout(layout), physmem, allocator)


def rows_of(n, width=3, seed=0):
    rng = np.random.default_rng(seed)
    return [tuple(int(v) for v in row) for row in rng.integers(0, 10_000, (n, width))]


class TestLoading:
    @pytest.mark.parametrize("layout", ["row", "column"])
    def test_roundtrip(self, layout):
        table = make_table(layout)
        rows = rows_of(100)
        table.insert_many(rows)
        assert table.n_tuples == 100
        for i in (0, 1, 50, 99):
            assert table.read_tuple(i) == rows[i]

    def test_empty_insert(self):
        table = make_table()
        table.insert_many([])
        assert table.n_tuples == 0

    def test_incremental_inserts(self):
        table = make_table()
        table.insert_many(rows_of(10, seed=1))
        table.insert_many(rows_of(10, seed=2))
        assert table.n_tuples == 20
        assert table.read_tuple(15) == rows_of(10, seed=2)[5]

    def test_insert_packed_shape_check(self):
        table = make_table()
        with pytest.raises(LayoutError):
            table.insert_packed(np.zeros((5, 99), dtype=np.int64))

    def test_multi_chunk_table(self):
        table = make_table()
        per_subarray = (SMALL_RCNVM_GEOMETRY.cols // 3) * SMALL_RCNVM_GEOMETRY.rows
        n = per_subarray + 10
        packed = np.arange(n * 3, dtype=np.int64).reshape(n, 3)
        table.insert_packed(packed)
        assert len(table.chunks) == 2
        assert table.read_tuple(per_subarray + 5) == tuple(
            packed[per_subarray + 5]
        )


class TestFieldValues:
    @pytest.mark.parametrize("layout", ["row", "column"])
    def test_matches_read_tuple(self, layout):
        table = make_table(layout)
        rows = rows_of(64)
        table.insert_many(rows)
        values = table.field_values("b")
        assert [int(v) for v in values] == [r[1] for r in rows]

    def test_wide_field_words(self):
        table = make_table(fields=[("k", 8), ("w", 24)])
        table.insert_many([(i, (i, i * 2, i * 3)) for i in range(20)])
        assert list(table.field_values("w", 0)) == list(range(20))
        assert list(table.field_values("w", 2)) == [i * 3 for i in range(20)]

    def test_empty_table(self):
        table = make_table()
        assert len(table.field_values("a")) == 0

    def test_bad_word_index(self):
        table = make_table()
        table.insert_many(rows_of(4))
        with pytest.raises(LayoutError):
            table.field_offset("a", 1)


class TestRuns:
    @pytest.mark.parametrize("layout", ["row", "column"])
    def test_field_runs_read_the_right_values(self, layout):
        table = make_table(layout)
        rows = rows_of(50)
        table.insert_many(rows)
        collected = {}
        for run in table.field_runs("c"):
            physmem = table.physmem
            if run.vertical:
                values = physmem.read_vertical(run.subarray, run.fixed, run.start, run.count)
            else:
                values = physmem.read_horizontal(run.subarray, run.fixed, run.start, run.count)
            for j, value in enumerate(values):
                collected[run.first_tuple + j * run.tuple_stride] = int(value)
        assert collected == {i: rows[i][2] for i in range(50)}

    def test_tuple_run_reads_whole_tuple(self):
        table = make_table()
        rows = rows_of(10)
        table.insert_many(rows)
        run = table.tuple_run(7)
        values = table.physmem.read_horizontal(run.subarray, run.fixed, run.start, run.count)
        assert tuple(int(v) for v in values) == rows[7]

    def test_chunk_of_out_of_range(self):
        table = make_table()
        table.insert_many(rows_of(5))
        with pytest.raises(LayoutError):
            table.chunk_of(5)


class TestWrites:
    def test_write_field(self):
        table = make_table()
        table.insert_many(rows_of(10))
        table.write_field(3, "b", 4242)
        assert table.read_tuple(3)[1] == 4242
        assert table.field_values("b")[3] == 4242

    def test_write_preserves_neighbours(self):
        table = make_table()
        rows = rows_of(10)
        table.insert_many(rows)
        table.write_field(3, "b", 1)
        assert table.read_tuple(2) == rows[2]
        assert table.read_tuple(4) == rows[4]
        assert table.read_tuple(3)[0] == rows[3][0]


class TestPropertyRoundtrip:
    @given(
        n=st.integers(1, 200),
        layout=st.sampled_from(["row", "column"]),
        seed=st.integers(0, 5),
    )
    @settings(max_examples=30, deadline=None)
    def test_any_size_roundtrips(self, n, layout, seed):
        table = make_table(layout)
        rows = rows_of(n, seed=seed)
        table.insert_many(rows)
        sample = [0, n // 2, n - 1]
        for i in sample:
            assert table.read_tuple(i) == rows[i]
        assert [int(v) for v in table.field_values("a")] == [r[0] for r in rows]
