"""Model-based (stateful) property tests.

Two critical stateful components are checked against trivially-correct
Python models under random operation sequences:

* the set-associative LRU cache against a dict-of-lists model;
* the MESI directory against a single-writer/multi-reader ownership
  model.
"""

from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule
from hypothesis import strategies as st

from repro.cache.cache import Cache
from repro.cache.coherence import Mesi, MesiDirectory
from repro.cache.line import line_key
from repro.core.addressing import Orientation

KEYS = [line_key(i * 64, Orientation.ROW) for i in range(24)]


class LruCacheModel(RuleBasedStateMachine):
    """A 4-set x 2-way cache vs. an explicit per-set LRU list."""

    def __init__(self):
        super().__init__()
        self.cache = Cache("model", size_bytes=8 * 64, ways=2, hit_latency=1)
        self.model = {s: [] for s in range(self.cache.num_sets)}

    def _set_of(self, key):
        return key & (self.cache.num_sets - 1)

    @rule(key=st.sampled_from(KEYS))
    def lookup(self, key):
        line = self.cache.lookup(key)
        model_set = self.model[self._set_of(key)]
        if key in model_set:
            assert line is not None
            model_set.remove(key)
            model_set.append(key)  # most recently used at the back
        else:
            assert line is None

    @rule(key=st.sampled_from(KEYS))
    def install(self, key):
        _line, victim = self.cache.install(key)
        model_set = self.model[self._set_of(key)]
        if key in model_set:
            assert victim is None
            model_set.remove(key)
            model_set.append(key)
            return
        if len(model_set) >= self.cache.ways:
            expected_victim = model_set.pop(0)  # least recently used
            assert victim is not None and victim.key == expected_victim
        else:
            assert victim is None
        model_set.append(key)

    @rule(key=st.sampled_from(KEYS))
    def invalidate(self, key):
        line = self.cache.invalidate(key)
        model_set = self.model[self._set_of(key)]
        if key in model_set:
            assert line is not None
            model_set.remove(key)
        else:
            assert line is None

    @invariant()
    def contents_match(self):
        for set_index, model_set in self.model.items():
            actual = list(self.cache.sets[set_index])
            assert actual == model_set


class MesiModel(RuleBasedStateMachine):
    """3 cores over a directory vs. an ownership model.

    Model state per line: either a single writer (one core, dirty rights)
    or a reader set.  Uses a big LLC and big privates so capacity
    evictions never interfere (protocol transitions only)."""

    def __init__(self):
        super().__init__()
        privates = [Cache(f"L1-{c}", 64 * 64, 8, 1) for c in range(3)]
        llc = Cache("LLC", 512 * 64, 8, 1)
        self.directory = MesiDirectory(privates, llc)
        self.readers = {}  # key -> set of cores
        self.writer = {}  # key -> core or None

    @rule(core=st.integers(0, 2), key=st.sampled_from(KEYS))
    def read(self, core, key):
        self.directory.read(core, key)
        holders = self.readers.setdefault(key, set())
        holders.add(core)
        self.writer[key] = None if len(holders) > 1 or self.writer.get(key) != core else core

    @rule(core=st.integers(0, 2), key=st.sampled_from(KEYS))
    def write(self, core, key):
        self.directory.write(core, key)
        self.readers[key] = {core}
        self.writer[key] = core

    @invariant()
    def protocol_invariants_hold(self):
        for key in KEYS:
            self.directory.check_invariants(key)

    @invariant()
    def writers_match_model(self):
        for key, writer in self.writer.items():
            if writer is not None:
                assert self.directory.state_of(writer, key) is Mesi.MODIFIED
                for other in range(3):
                    if other != writer:
                        assert self.directory.state_of(other, key) is None

    @invariant()
    def readers_match_model(self):
        for key, holders in self.readers.items():
            for core in holders:
                assert self.directory.state_of(core, key) is not None


TestLruCacheModel = LruCacheModel.TestCase
TestLruCacheModel.settings = settings(max_examples=40, stateful_step_count=40,
                                      deadline=None)
TestMesiModel = MesiModel.TestCase
TestMesiModel.settings = settings(max_examples=30, stateful_step_count=30,
                                  deadline=None)
