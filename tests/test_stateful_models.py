"""Model-based (stateful) property tests.

Three critical stateful components are checked against trivially-correct
Python models under random operation sequences:

* the set-associative LRU cache against a dict-of-lists model;
* the MESI directory against a single-writer/multi-reader ownership
  model;
* the per-bank-queue channel scheduler against a flat-list oracle that
  implements the same scheduling spec directly over one submission-order
  list (no per-bank bookkeeping, no incremental occupancy counters).
"""

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)
from hypothesis import strategies as st

from repro.cache.cache import Cache
from repro.cache.coherence import Mesi, MesiDirectory
from repro.cache.line import line_key
from repro.core.addressing import Orientation
from repro.geometry import SMALL_RCNVM_GEOMETRY
from repro.memsim.bank import Bank
from repro.memsim.controller import ChannelController
from repro.memsim.request import MemRequest
from repro.memsim.stats import MemoryStats
from repro.memsim.timing import LPDDR3_800_RCNVM

KEYS = [line_key(i * 64, Orientation.ROW) for i in range(24)]


class LruCacheModel(RuleBasedStateMachine):
    """A 4-set x 2-way cache vs. an explicit per-set LRU list."""

    def __init__(self):
        super().__init__()
        self.cache = Cache("model", size_bytes=8 * 64, ways=2, hit_latency=1)
        self.model = {s: [] for s in range(self.cache.num_sets)}

    def _set_of(self, key):
        return key & (self.cache.num_sets - 1)

    @rule(key=st.sampled_from(KEYS))
    def lookup(self, key):
        line = self.cache.lookup(key)
        model_set = self.model[self._set_of(key)]
        if key in model_set:
            assert line is not None
            model_set.remove(key)
            model_set.append(key)  # most recently used at the back
        else:
            assert line is None

    @rule(key=st.sampled_from(KEYS))
    def install(self, key):
        _line, victim = self.cache.install(key)
        model_set = self.model[self._set_of(key)]
        if key in model_set:
            assert victim is None
            model_set.remove(key)
            model_set.append(key)
            return
        if len(model_set) >= self.cache.ways:
            expected_victim = model_set.pop(0)  # least recently used
            assert victim is not None and victim.key == expected_victim
        else:
            assert victim is None
        model_set.append(key)

    @rule(key=st.sampled_from(KEYS))
    def invalidate(self, key):
        line = self.cache.invalidate(key)
        model_set = self.model[self._set_of(key)]
        if key in model_set:
            assert line is not None
            model_set.remove(key)
        else:
            assert line is None

    @invariant()
    def contents_match(self):
        for set_index, model_set in self.model.items():
            actual = list(self.cache.sets[set_index])
            assert actual == model_set


class MesiModel(RuleBasedStateMachine):
    """3 cores over a directory vs. an ownership model.

    Model state per line: either a single writer (one core, dirty rights)
    or a reader set.  Uses a big LLC and big privates so capacity
    evictions never interfere (protocol transitions only)."""

    def __init__(self):
        super().__init__()
        privates = [Cache(f"L1-{c}", 64 * 64, 8, 1) for c in range(3)]
        llc = Cache("LLC", 512 * 64, 8, 1)
        self.directory = MesiDirectory(privates, llc)
        self.readers = {}  # key -> set of cores
        self.writer = {}  # key -> core or None

    @rule(core=st.integers(0, 2), key=st.sampled_from(KEYS))
    def read(self, core, key):
        self.directory.read(core, key)
        holders = self.readers.setdefault(key, set())
        holders.add(core)
        self.writer[key] = None if len(holders) > 1 or self.writer.get(key) != core else core

    @rule(core=st.integers(0, 2), key=st.sampled_from(KEYS))
    def write(self, core, key):
        self.directory.write(core, key)
        self.readers[key] = {core}
        self.writer[key] = core

    @invariant()
    def protocol_invariants_hold(self):
        for key in KEYS:
            self.directory.check_invariants(key)

    @invariant()
    def writers_match_model(self):
        for key, writer in self.writer.items():
            if writer is not None:
                assert self.directory.state_of(writer, key) is Mesi.MODIFIED
                for other in range(3):
                    if other != writer:
                        assert self.directory.state_of(other, key) is None

    @invariant()
    def readers_match_model(self):
        for key, holders in self.readers.items():
            for core in holders:
                assert self.directory.state_of(core, key) is not None


class FlatListOracle:
    """Brute-force scheduler reference: one flat submission-order list.

    Implements the ChannelController scheduling spec as directly as
    possible — every decision scans the whole list — so any divergence in
    the controller's per-bank queues, incremental occupancy counts, or
    drain bookkeeping shows up as a completion-time mismatch."""

    def __init__(self, geometry, timing, supports_column, queue_depth,
                 policy, page_policy, age_cap, drain_high, drain_low,
                 adaptive_threshold):
        self.geometry = geometry
        self.timing = timing
        self.queue_depth = queue_depth
        self.policy = policy
        self.page_policy = page_policy
        self.age_cap = age_cap
        self.drain_high_count = max(1, int(queue_depth * drain_high))
        self.drain_low_count = int(queue_depth * drain_low)
        self.adaptive_threshold = adaptive_threshold
        n_banks = geometry.ranks * geometry.banks
        self.banks = [Bank(timing, supports_column) for _ in range(n_banks)]
        self.pending = []  # [request, bypass_count] in submission order
        self.draining = False
        self.streaks = [0] * n_banks
        self.last_closed = [None] * n_banks
        self.bus_free = 0
        self.stats = MemoryStats()

    def _bank_index(self, req):
        return req.rank * self.geometry.banks + req.bank

    def submit(self, req):
        self.pending.append([req, 0])
        while (len([e for e in self.pending if not e[0].is_write]) > self.queue_depth
               or len([e for e in self.pending if e[0].is_write]) > self.queue_depth):
            self._step()

    def completion_of(self, req):
        while req.completion is None:
            self._step()
        return req.completion

    def drain(self):
        last = self.bus_free
        while self.pending:
            last = self._step()
        return last

    def _candidates(self):
        if self.policy == "fcfs":
            return self.pending
        writes = [e for e in self.pending if e[0].is_write]
        if self.draining:
            if len(writes) <= self.drain_low_count:
                self.draining = False
        elif len(writes) >= self.drain_high_count:
            self.draining = True
        if self.draining:
            return writes
        reads = [e for e in self.pending if not e[0].is_write]
        return reads if reads else writes

    def _step(self):
        candidates = self._candidates()  # submission order preserved
        if self.policy == "fcfs":
            entry = candidates[0]
        else:
            starved = [e for e in candidates if e[1] >= self.age_cap]
            if starved:
                entry = starved[0]
            else:
                ready = [
                    e for e in candidates
                    if self.banks[self._bank_index(e[0])].matches(e[0])
                ]
                entry = ready[0] if ready else candidates[0]
                for other in candidates:
                    if other is entry:
                        break
                    other[1] += 1
        self.pending.remove(entry)
        req = entry[0]
        bank_index = self._bank_index(req)
        bank = self.banks[bank_index]
        stats = self.stats
        hit0, conflict0, switch0 = (stats.buffer_hits, stats.buffer_conflicts,
                                    stats.orientation_switches)
        _start, data_at = bank.prepare(req, stats)
        end = max(data_at, self.bus_free) + self.timing.burst_cpu
        self.bus_free = end
        req.completion = end
        if self.page_policy == "closed":
            bank.flush(stats, 0)
        elif self.page_policy == "adaptive":
            streak = self.streaks[bank_index]
            if stats.buffer_hits > hit0:
                streak = 0
                self.last_closed[bank_index] = None
            elif stats.buffer_conflicts > conflict0:
                weight = 2 if stats.orientation_switches > switch0 else 1
                streak = min(self.adaptive_threshold, streak + weight)
            else:
                wanted = (req.buffer_kind, req.subarray, req.buffer_index)
                if wanted == self.last_closed[bank_index]:
                    streak = 0
            if streak >= self.adaptive_threshold:
                self.last_closed[bank_index] = (
                    bank.open_kind, bank.open_subarray, bank.open_index
                )
                bank.flush(stats, 0)
            self.streaks[bank_index] = streak
        return end


def _mirrored_request(bank, row, col, orientation, is_write, arrival):
    """Two identical requests, one per implementation under test."""
    return [
        MemRequest(channel=0, rank=0, bank=bank, subarray=0, row=row,
                   col=col, orientation=orientation, is_write=is_write,
                   arrival=arrival)
        for _ in range(2)
    ]


class SchedulerVsOracle(RuleBasedStateMachine):
    """The per-bank-queue controller vs. the flat-list oracle, under the
    same operation sequence: all policies x row/column/gather requests."""

    def __init__(self):
        super().__init__()
        self.pairs = []
        self.now = 0

    @initialize(
        policy=st.sampled_from(ChannelController.POLICIES),
        page_policy=st.sampled_from(ChannelController.PAGE_POLICIES),
        age_cap=st.integers(1, 5),
    )
    def setup(self, policy, page_policy, age_cap):
        config = dict(
            queue_depth=5, policy=policy, page_policy=page_policy,
            age_cap=age_cap, drain_high=0.6, drain_low=0.2,
            adaptive_threshold=2,
        )
        self.controller = ChannelController(
            SMALL_RCNVM_GEOMETRY, LPDDR3_800_RCNVM, supports_column=True,
            **config,
        )
        self.oracle = FlatListOracle(
            SMALL_RCNVM_GEOMETRY, LPDDR3_800_RCNVM, supports_column=True,
            **config,
        )

    @rule(
        bank=st.integers(0, 3),
        row=st.integers(0, 3),
        col=st.integers(0, 3),
        orientation=st.sampled_from([Orientation.ROW, Orientation.COLUMN,
                                     Orientation.GATHER]),
        is_write=st.booleans(),
        gap=st.integers(0, 50),
    )
    def submit(self, bank, row, col, orientation, is_write, gap):
        self.now += gap
        for_ctrl, for_oracle = _mirrored_request(
            bank, row, col, orientation, is_write, self.now
        )
        self.pairs.append((for_ctrl, for_oracle))
        self.controller.submit(for_ctrl)
        self.oracle.submit(for_oracle)

    @precondition(lambda self: self.pairs)
    @rule(data=st.data())
    def resolve_one(self, data):
        index = data.draw(st.integers(0, len(self.pairs) - 1))
        for_ctrl, for_oracle = self.pairs[index]
        assert (self.controller.completion_of(for_ctrl)
                == self.oracle.completion_of(for_oracle))

    @rule()
    def drain(self):
        assert self.controller.drain() == self.oracle.drain()

    @invariant()
    def queues_and_completions_agree(self):
        if not hasattr(self, "controller"):
            return  # before @initialize ran
        assert len(self.controller.pending) == len(self.oracle.pending)
        for for_ctrl, for_oracle in self.pairs:
            assert for_ctrl.completion == for_oracle.completion


TestLruCacheModel = LruCacheModel.TestCase
TestLruCacheModel.settings = settings(max_examples=40, stateful_step_count=40,
                                      deadline=None)
TestMesiModel = MesiModel.TestCase
TestMesiModel.settings = settings(max_examples=30, stateful_step_count=30,
                                  deadline=None)
TestSchedulerVsOracle = SchedulerVsOracle.TestCase
TestSchedulerVsOracle.settings = settings(max_examples=40,
                                          stateful_step_count=40,
                                          deadline=None)
