"""Unit tests for the whole-trace replay kernel (repro.cpu.replaykernel).

Bit-for-bit equivalence against the batched path over the full SQL suite
lives in ``tests/test_replay_equivalence.py``; these tests pin the
supporting machinery — mode selection, the eligibility gate's fallback
decisions, and the end-state reconstruction on a small system.
"""

import pytest

from repro.cpu.machine import REPLAY_MODES, Machine
from repro.cpu.replaykernel import has_write_after_read, kernel_eligible
from repro.cpu.trace import Op
from repro.cpu.tracebuffer import TraceBuffer
from repro.errors import ConfigurationError
from repro.harness.systems import SMALL_CACHE_CONFIG, build_system
from repro.imdb.database import Database


def _small_db(system="RC-NVM", rows=32):
    # 32 rows keeps the trace's unique lines within the small LLC's
    # associativity, so pure-read traces stay kernel-eligible.
    memory = build_system(system, small=True)
    db = Database(memory, cache_config=SMALL_CACHE_CONFIG)
    db.create_table("t", [("f1", 8), ("f2", 8)], layout="row")
    db.insert_many("t", [(i, i * 3) for i in range(rows)])
    return db


def test_llc_set_overflow_falls_back():
    # More distinct lines than LLC ways in one set would make the
    # inclusive LLC evict (and back-invalidate), which the flat cache
    # model does not track.
    db = _small_db(rows=64)
    fin = _read_trace(db).finalize()
    db.reset_timing()
    assert not kernel_eligible(db.machine, fin)


def _read_trace(db, sql="SELECT SUM(f2) FROM t WHERE f1 > x"):
    plan = db.plan(sql, params={"x": 10})
    _result, buffer = db.executor.execute(plan)
    return buffer


class TestModeSelection:
    def test_replay_modes_constant(self):
        assert REPLAY_MODES == ("precise", "batched", "kernel")

    def test_invalid_mode_raises(self):
        db = _small_db()
        with pytest.raises(ValueError):
            Machine(db.memory, db.hierarchy, replay_mode="vectorized")

    def test_database_threads_mode_through_reset_timing(self):
        memory = build_system("DRAM", small=True)
        db = Database(memory, cache_config=SMALL_CACHE_CONFIG,
                      replay_mode="kernel")
        assert db.machine.replay_mode == "kernel"
        db.reset_timing()
        assert db.machine.replay_mode == "kernel"

    def test_precise_mode_never_batches(self):
        db = _small_db()
        db.replay_mode = "precise"
        db.reset_timing()
        buffer = _read_trace(db)
        precise = db.machine.run(buffer)
        db.replay_mode = "kernel"
        db.reset_timing()
        assert db.machine.run(buffer) == precise


class TestEligibility:
    def test_pure_read_trace_is_eligible(self):
        db = _small_db()
        fin = _read_trace(db).finalize()
        db.reset_timing()
        assert kernel_eligible(db.machine, fin)

    def test_writes_fall_back(self):
        db = _small_db()
        plan = db.plan("UPDATE t SET f2 = 7 WHERE f1 > x", params={"x": 20})
        _result, buffer = db.executor.execute(plan)
        fin = buffer.finalize()
        assert fin.n_writes > 0
        db.reset_timing()
        assert not kernel_eligible(db.machine, fin)

    def test_empty_trace_falls_back(self):
        db = _small_db()
        db.reset_timing()
        assert not kernel_eligible(db.machine, TraceBuffer().finalize())

    def test_dirty_simulator_state_falls_back(self):
        db = _small_db()
        fin = _read_trace(db).finalize()
        db.reset_timing()
        db.machine.run(fin)  # leaves warm caches and touched banks
        assert not kernel_eligible(db.machine, fin)

    def test_shallow_queue_falls_back(self):
        # queue_depth <= window could force overflow-driven early
        # scheduling, which the flat loop does not model.
        memory = build_system("RC-NVM", small=True, queue_depth=4)
        db = Database(memory, cache_config=SMALL_CACHE_CONFIG, window=8)
        db.create_table("t", [("f1", 8), ("f2", 8)], layout="row")
        db.insert_many("t", [(i, i) for i in range(64)])
        fin = _read_trace(db).finalize()
        db.reset_timing()
        assert not kernel_eligible(db.machine, fin)

    def test_closed_page_policy_falls_back(self):
        memory = build_system("RC-NVM", small=True, page_policy="closed")
        db = Database(memory, cache_config=SMALL_CACHE_CONFIG)
        db.create_table("t", [("f1", 8), ("f2", 8)], layout="row")
        db.insert_many("t", [(i, i) for i in range(64)])
        fin = _read_trace(db).finalize()
        db.reset_timing()
        assert not kernel_eligible(db.machine, fin)

    def test_mixed_orientation_with_synonym_falls_back(self):
        # RC-NVM arms a synonym tracker; a trace mixing row and column
        # lines could charge crossing cycles the flat model skips.
        db = _small_db("RC-NVM")
        buffer = TraceBuffer()
        buffer.emit(int(Op.READ), 0x0, 64, 1)
        buffer.emit(int(Op.CREAD), 0x40, 64, 1)
        fin = buffer.finalize()
        db.reset_timing()
        assert not kernel_eligible(db.machine, fin)

    def test_fallback_still_replays_correctly(self):
        db = _small_db()
        plan = db.plan("UPDATE t SET f2 = 9 WHERE f1 > x", params={"x": 20})
        _result, buffer = db.executor.execute(plan)
        db.reset_timing()
        db.machine.replay_mode = "batched"
        batched = db.machine.run(buffer)
        db.reset_timing()
        db.machine.replay_mode = "kernel"
        assert db.machine.run(buffer) == batched


class TestEndState:
    def test_kernel_leaves_identical_simulator_state(self):
        db = _small_db()
        buffer = _read_trace(db)
        db.reset_timing()
        db.machine.replay_mode = "batched"
        db.machine.run(buffer)
        expected = self._state(db)
        db.reset_timing()
        db.machine.replay_mode = "kernel"
        db.machine.run(buffer)
        assert self._state(db) == expected

    def test_repeat_replay_reuses_memoized_columns(self):
        db = _small_db()
        fin = _read_trace(db).finalize()
        db.replay_mode = "kernel"
        db.reset_timing()
        first = db.machine.run(fin)
        assert "static" in fin._kernel_cache
        assert db.memory.mapper in fin._kernel_cache
        db.reset_timing()
        assert db.machine.run(fin) == first

    @staticmethod
    def _state(db):
        hierarchy = db.machine.hierarchy
        state = [list(hierarchy._counts)]
        for level in hierarchy.levels:
            state.append(level.stats.snapshot())
            state.append([list(s.keys()) for s in level.sets])
        for ctrl in db.memory.controllers:
            state.append(ctrl.stats.snapshot())
            state.append(ctrl.bus_free)
            state.extend(
                (bank.open_entry, bank.ready_at, bank.activated_at,
                 bank.accesses, bank.activations)
                for bank in ctrl.banks
            )
        return state


class TestWriteAfterReadHazard:
    """The stale-flat-state hazard gate (``has_write_after_read``).

    The kernel replays reads against a flat snapshot of line state; a
    write to a line the trace already read would leave later flat reads
    seeing pre-write state.  Today the pure-read shape check already
    rejects every write, but the hazard gate is what keeps a future
    write-trace widening from silently replaying read-write-read lines
    wrong — so its semantics are pinned here.
    """

    def test_read_then_write_same_line_is_flagged(self):
        buffer = TraceBuffer()
        buffer.emit(int(Op.READ), 0x0, 64, 1)
        buffer.emit(int(Op.WRITE), 0x0, 64, 1)
        assert has_write_after_read(buffer.finalize())

    def test_write_then_read_same_line_is_not_flagged(self):
        buffer = TraceBuffer()
        buffer.emit(int(Op.WRITE), 0x0, 64, 1)
        buffer.emit(int(Op.READ), 0x0, 64, 1)
        assert not has_write_after_read(buffer.finalize())

    def test_disjoint_lines_are_not_flagged(self):
        buffer = TraceBuffer()
        buffer.emit(int(Op.READ), 0x0, 64, 1)
        buffer.emit(int(Op.WRITE), 0x40, 64, 1)
        assert not has_write_after_read(buffer.finalize())

    def test_pure_traces_are_not_flagged(self):
        reads = TraceBuffer()
        reads.emit(int(Op.READ), 0x0, 64, 1)
        reads.emit(int(Op.READ), 0x40, 64, 1)
        assert not has_write_after_read(reads.finalize())
        writes = TraceBuffer()
        writes.emit(int(Op.WRITE), 0x0, 64, 1)
        writes.emit(int(Op.WRITE), 0x0, 64, 1)
        assert not has_write_after_read(writes.finalize())

    def test_verdict_is_memoized_per_finalized_trace(self):
        buffer = TraceBuffer()
        buffer.emit(int(Op.READ), 0x0, 64, 1)
        buffer.emit(int(Op.WRITE), 0x0, 64, 1)
        fin = buffer.finalize()
        assert has_write_after_read(fin)
        assert fin._kernel_cache["write_after_read"] is True

    def test_mixed_trace_rejected_and_fallback_matches_batched(self):
        # The full seam: a write-after-same-line-read trace must be
        # rejected by the eligibility gate, and the kernel-mode machine
        # must fall back to a replay identical to the batched path.
        db = _small_db()
        buffer = TraceBuffer()
        buffer.emit(int(Op.READ), 0x0, 64, 1)
        buffer.emit(int(Op.WRITE), 0x0, 64, 1)
        buffer.emit(int(Op.READ), 0x40, 64, 1)
        fin = buffer.finalize()
        assert has_write_after_read(fin)
        db.reset_timing()
        assert not kernel_eligible(db.machine, fin)
        db.machine.replay_mode = "batched"
        batched = db.machine.run(buffer)
        db.reset_timing()
        db.machine.replay_mode = "kernel"
        assert db.machine.run(buffer) == batched
