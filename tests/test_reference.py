"""Reference engine semantics (ground truth for the executor)."""

import pytest

from conftest import make_database
from repro.errors import SqlError
from repro.imdb.sql_parser import parse


@pytest.fixture
def db():
    database = make_database("RC-NVM", verify=False)
    database.create_table("t", [("a", 8), ("b", 8), ("c", 8)], layout="column")
    database.insert_many(
        "t", [(i, i * 10, 100 - i) for i in range(10)]
    )
    return database


class TestSelect:
    def test_projection(self, db):
        result = db.reference.execute(parse("SELECT a, c FROM t WHERE a < 3"))
        assert result.rows == [(0, 100), (1, 99), (2, 98)]

    def test_star(self, db):
        result = db.reference.execute(parse("SELECT * FROM t WHERE a = 5"))
        assert result.rows == [(5, 50, 95)]

    def test_sum(self, db):
        result = db.reference.execute(parse("SELECT SUM(b) FROM t WHERE a >= 8"))
        assert result.value == 80 + 90

    def test_avg(self, db):
        result = db.reference.execute(parse("SELECT AVG(a) FROM t"))
        assert result.value == pytest.approx(4.5)

    def test_count(self, db):
        result = db.reference.execute(parse("SELECT COUNT(a) FROM t WHERE a != 0"))
        assert result.value == 9

    def test_empty_aggregate(self, db):
        result = db.reference.execute(parse("SELECT SUM(a) FROM t WHERE a > 1000"))
        assert result.value == 0

    def test_params(self, db):
        result = db.reference.execute(
            parse("SELECT COUNT(a) FROM t WHERE a > x"), params={"x": 7}
        )
        assert result.value == 2

    def test_flipped_constant(self, db):
        result = db.reference.execute(parse("SELECT COUNT(a) FROM t WHERE 7 < a"))
        assert result.value == 2


class TestJoin:
    def test_equijoin(self, db):
        db.create_table("u", [("a", 8), ("z", 8)], layout="column")
        db.insert_many("u", [(i, i * 1000) for i in range(0, 10, 2)])
        result = db.reference.execute(
            parse("SELECT t.b, u.z FROM t, u WHERE t.a = u.a")
        )
        assert sorted(result.rows) == [(i * 10, i * 1000) for i in range(0, 10, 2)]

    def test_join_with_inequality(self, db):
        db.create_table("v", [("a", 8), ("c", 8)], layout="column")
        db.insert_many("v", [(i, i) for i in range(10)])
        result = db.reference.execute(
            parse("SELECT t.a, v.a FROM t, v WHERE t.c > v.c AND t.a = v.a")
        )
        # t.c = 100 - i, v.c = i: 100 - i > i for i < 50 -> all 10 rows.
        assert len(result.rows) == 10

    def test_join_requires_equality(self, db):
        db.create_table("w", [("a", 8)], layout="column")
        db.insert_many("w", [(1,)])
        with pytest.raises(SqlError):
            db.reference.execute(parse("SELECT t.a, w.a FROM t, w WHERE t.a > w.a"))


class TestUpdate:
    def test_count_only_no_mutation(self, db):
        result = db.reference.execute(parse("UPDATE t SET b = 0 WHERE a < 4"))
        assert result.count == 4
        # Reference never mutates.
        assert int(db.table("t").field_values("b")[0]) == 0 * 10
        assert int(db.table("t").field_values("b")[3]) == 30
