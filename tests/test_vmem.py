"""Huge-page layout control (paper Section 4.2.2)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.vmem import HUGE_PAGE_BYTES, Arena, HugePage
from repro.errors import AddressError, ConfigurationError
from repro.geometry import Geometry, RCNVM_GEOMETRY


class TestHugePage:
    def test_alignment_enforced(self):
        with pytest.raises(AddressError):
            HugePage(virtual_base=4096, physical_base=0)
        with pytest.raises(AddressError):
            HugePage(virtual_base=0, physical_base=4096)

    def test_contains(self):
        page = HugePage(HUGE_PAGE_BYTES, 0)
        assert page.contains(HUGE_PAGE_BYTES)
        assert page.contains(2 * HUGE_PAGE_BYTES - 1)
        assert not page.contains(2 * HUGE_PAGE_BYTES)


class TestLayoutControlInvariant:
    def test_table1_geometry_fits(self):
        # Figure 7: subarray(3) + row(10) + col(10) + offset(3) = 26 bits,
        # comfortably inside the 30 low bits a huge page preserves.
        arena = Arena(RCNVM_GEOMETRY)
        assert arena.check_layout_control() == 26

    def test_oversized_subarray_rejected(self):
        huge = Geometry(channels=1, ranks=1, banks=1, subarrays=1,
                        rows=1 << 16, cols=1 << 14)  # 16+14+3 = 33 bits
        arena = Arena(huge)
        with pytest.raises(ConfigurationError):
            arena.check_layout_control()


class TestTranslation:
    def test_map_and_translate(self):
        arena = Arena(RCNVM_GEOMETRY)
        page = arena.map_page()
        virtual = page.virtual_base + 12345
        assert arena.translate(virtual) == page.physical_base + 12345

    def test_low_bits_preserved(self):
        arena = Arena(RCNVM_GEOMETRY)
        arena.map_page()
        arena.map_page()
        for offset in (0, 1, 0x123456, HUGE_PAGE_BYTES - 8):
            virtual = arena.virtual_start + HUGE_PAGE_BYTES + offset
            assert arena.low_bits_preserved(virtual)

    def test_translate_back(self):
        arena = Arena(RCNVM_GEOMETRY)
        page = arena.map_page()
        physical = page.physical_base + 777
        assert arena.translate(arena.translate_back(physical)) == physical

    def test_unmapped_raises(self):
        arena = Arena(RCNVM_GEOMETRY)
        with pytest.raises(AddressError):
            arena.translate(arena.virtual_start)

    def test_frames_exhaust(self):
        arena = Arena(RCNVM_GEOMETRY)  # 4 GB = 4 frames
        for _ in range(4):
            arena.map_page()
        with pytest.raises(AddressError):
            arena.map_page()

    def test_misaligned_start_rejected(self):
        with pytest.raises(AddressError):
            Arena(RCNVM_GEOMETRY, virtual_start=123)

    @given(offset=st.integers(0, HUGE_PAGE_BYTES - 1))
    @settings(max_examples=100)
    def test_identity_of_low_bits_property(self, offset):
        arena = Arena(RCNVM_GEOMETRY)
        arena.map_page()
        virtual = arena.virtual_start + offset
        physical = arena.translate(virtual)
        assert virtual & (HUGE_PAGE_BYTES - 1) == physical & (HUGE_PAGE_BYTES - 1)
