"""LatencyHistogram binning and percentile semantics.

Pins two reporting-math fixes:

* ``record`` rejects negative latencies — ``int(-5).bit_length()`` is 3,
  so a negative latency used to land silently in the [4, 8) bucket and
  corrupt every percentile downstream;
* ``percentile(0)`` reports the distribution's minimum (the lower bound
  of the smallest occupied bucket), not the first-crossing bucket's
  upper bound, which overstated the minimum by up to 2x.
"""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.memsim.stats import LatencyHistogram


class TestRecord:
    def test_rejects_negative_latency(self):
        hist = LatencyHistogram()
        with pytest.raises(ValueError, match="negative latency"):
            hist.record(-5)
        assert hist.count == 0 and hist.buckets == {}

    def test_zero_and_positive_bin_by_bit_length(self):
        hist = LatencyHistogram()
        for latency, bucket in ((0, 0), (1, 1), (2, 2), (3, 2), (4, 3), (7, 3)):
            hist.record(latency)
            assert bucket in hist.buckets

    @given(st.integers(min_value=-(2**40), max_value=-1))
    def test_any_negative_rejected(self, latency):
        hist = LatencyHistogram()
        with pytest.raises(ValueError):
            hist.record(latency)
        assert hist.count == 0

    @given(st.lists(st.integers(min_value=0, max_value=2**40), min_size=1))
    def test_counts_conserved(self, latencies):
        hist = LatencyHistogram()
        for latency in latencies:
            hist.record(latency)
        assert hist.count == len(latencies)
        assert sum(hist.buckets.values()) == len(latencies)


class TestPercentile:
    def test_empty_is_zero(self):
        assert LatencyHistogram().percentile(0) == 0
        assert LatencyHistogram().percentile(99) == 0

    def test_p0_is_minimum_bucket_lower_bound(self):
        """Regression: one sample of 5 lives in bucket 3 = [4, 8);
        percentile(0) must report the bucket's lower bound 4, where the
        first-crossing rule reported 7."""
        hist = LatencyHistogram()
        hist.record(5)
        assert hist.percentile(0) == 4
        assert hist.percentile(100) == 7

    def test_p0_with_zero_latency(self):
        hist = LatencyHistogram()
        hist.record(0)
        hist.record(100)
        assert hist.percentile(0) == 0

    @given(st.lists(st.integers(min_value=0, max_value=2**30), min_size=1))
    def test_p0_lower_bounds_every_sample(self, latencies):
        """percentile(0) is a valid lower bound: <= every recorded
        latency, and never below the smallest bucket's floor."""
        hist = LatencyHistogram()
        for latency in latencies:
            hist.record(latency)
        minimum = hist.percentile(0)
        assert minimum <= min(latencies)
        low = min(hist.buckets)
        assert minimum == (0 if low == 0 else 1 << (low - 1))

    @given(st.lists(st.integers(min_value=0, max_value=2**30), min_size=1),
           st.integers(min_value=1, max_value=100))
    def test_percentiles_monotone_and_bounded(self, latencies, pct):
        hist = LatencyHistogram()
        for latency in latencies:
            hist.record(latency)
        value = hist.percentile(pct)
        assert hist.percentile(0) <= value <= hist.percentile(100)
        # The p100 bucket's upper bound covers the true maximum.
        assert hist.percentile(100) >= max(latencies)
