"""The paper's Section 4.4 usage examples (Figures 10-12), executed.

Figure 9 sets the scene: a 16-tuple table of four 8-byte fields stored
in a 512-byte RC-NVM region.  Figure 10 runs an OLTP query with
row-oriented accesses, Figure 11 an OLAP aggregate with two
column-oriented loads, Figure 12 a mixed query that scans one column and
then row-fetches the qualifying tuples.  We build exactly that table and
check both the results and the access patterns the figures describe.
"""

import pytest

from conftest import make_database
from repro.cpu.trace import Op


@pytest.fixture
def figure9_db():
    """The 16-tuple, 4-field table of Figure 9 (values chosen so each
    figure's predicate selects a non-trivial subset)."""
    db = make_database("RC-NVM", verify=True)
    db.create_table(
        "table-fig9", [("f1", 8), ("f2", 8), ("f3", 8), ("f4", 8)], layout="column"
    )
    rows = [
        (i, 100 + i, 1000 + i * 40, 4000 + i * 50)  # f3 in 1000..1600
        for i in range(1, 17)
    ]
    db.insert_many("table-fig9", rows)
    return db


class TestFigure10Oltp:
    """SELECT * FROM table WHERE f3 < 1234 — row-oriented retrieval."""

    SQL = "SELECT * FROM table-fig9 WHERE f3 < 1234"

    def test_result(self, figure9_db):
        outcome = figure9_db.execute(self.SQL, simulate=False)
        # f3 = 1000 + 40i < 1234 for i in 1..5.
        assert len(outcome.result.rows) == 5
        assert all(row[2] < 1234 for row in outcome.result.rows)

    def test_qualifying_tuples_fetched_with_row_accesses(self, figure9_db):
        plan = figure9_db.plan(self.SQL)
        _result, trace = figure9_db.executor.execute(plan)
        # The tuple fetches of Figure 10's loop are ordinary loads.
        assert any(a.op == Op.READ for a in trace)


class TestFigure11Olap:
    """SELECT SUM(f4) FROM table WHERE f4 < 4321 — two column loads
    cover all sixteen f4 fields."""

    SQL = "SELECT SUM(f4) FROM table-fig9 WHERE f4 < 4321"

    def test_result(self, figure9_db):
        outcome = figure9_db.execute(self.SQL, simulate=False)
        expected = sum(4000 + i * 50 for i in range(1, 17) if 4000 + i * 50 < 4321)
        assert outcome.result.value == expected

    def test_column_loads_used(self, figure9_db):
        plan = figure9_db.plan(self.SQL)
        _result, trace = figure9_db.executor.execute(plan)
        creads = [a for a in trace if a.op == Op.CREAD]
        assert creads
        # Figure 11 reads all 16 f4 fields with two column-oriented
        # accesses (the 16 tuples split across two column groups); our
        # scan likewise needs only a couple of cloads per predicate pass.
        assert len(creads) <= 4

    def test_no_row_loads_needed(self, figure9_db):
        plan = figure9_db.plan(self.SQL)
        _result, trace = figure9_db.executor.execute(plan)
        assert all(a.op != Op.READ for a in trace)


class TestFigure12Mixed:
    """SELECT * FROM table-a WHERE f10 > x — scan the f10 column, then
    issue a row-oriented access per qualifying tuple."""

    def test_mixed_access_pattern(self, figure9_db):
        # Reuse the Figure 9 table with f2 as the "f10" of Figure 12.
        plan = figure9_db.plan(
            "SELECT * FROM table-fig9 WHERE f2 > 111", selectivity_hint=0.3
        )
        _result, trace = figure9_db.executor.execute(plan)
        ops = {a.op for a in trace}
        # Both access directions appear in one query: the point of
        # Figure 12 ("the data transmitted on memory bus are all
        # effective").
        assert Op.CREAD in ops and Op.READ in ops

    def test_result_correct(self, figure9_db):
        outcome = figure9_db.execute(
            "SELECT * FROM table-fig9 WHERE f2 > 111", simulate=False
        )
        assert len(outcome.result.rows) == 5  # f2 = 100+i > 111 for i in 12..16
