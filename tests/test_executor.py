"""Executor: results always match the reference engine; traces obey the
system's capabilities."""

import numpy as np
import pytest

from conftest import make_database, simple_rows
from repro.core.addressing import Orientation
from repro.cpu.trace import Op
from repro.imdb.sql_parser import parse

QUERIES = [
    "SELECT * FROM t WHERE f1 > 800",
    "SELECT * FROM t WHERE f1 > 50",
    "SELECT f3, f4 FROM t WHERE f1 > 700",
    "SELECT f3, f4 FROM t WHERE f1 > 100 AND f2 < 600",
    "SELECT SUM(f2) FROM t WHERE f1 > 300",
    "SELECT AVG(f3) FROM t WHERE f1 > 300",
    "SELECT COUNT(f1) FROM t WHERE f2 < 100",
    "SELECT f2, f4 FROM t",
    "UPDATE t SET f3 = 1, f4 = 2 WHERE f1 = 500",
]


def build_db(system, layout, n=700, fields=6):
    db = make_database(system, verify=True)
    db.create_table("t", [(f"f{i}", 8) for i in range(1, fields + 1)], layout=layout)
    db.insert_many("t", simple_rows(n, fields, seed=9))
    return db


class TestResultCorrectness:
    """Every statement, on every system and layout, is checked against the
    naive reference engine (Database(verify=True) raises on mismatch)."""

    @pytest.mark.parametrize("sql", QUERIES)
    def test_all_systems_layouts(self, sql, any_system_name, any_layout):
        db = build_db(any_system_name, any_layout)
        outcome = db.execute(sql, simulate=False)
        assert outcome.result is not None

    def test_join_result_matches_reference(self, any_system_name):
        db = make_database(any_system_name, verify=True)
        layout = "column" if db.memory.supports_column else "row"
        db.create_table("a", [("k", 8), ("v", 8), ("w", 8)], layout=layout)
        db.create_table("b", [("k", 8), ("x", 8), ("y", 8)], layout=layout)
        rng = np.random.default_rng(4)
        keys = rng.permutation(200)
        db.insert_many("a", [(int(k), i, i * 2) for i, k in enumerate(keys)])
        keys2 = rng.permutation(200)
        db.insert_many("b", [(int(k), i * 3, i) for i, k in enumerate(keys2)])
        outcome = db.execute(
            "SELECT a.v, b.x FROM a, b WHERE a.w > b.y AND a.k = b.k",
            simulate=False,
        )
        assert outcome.result.kind == "rows"

    def test_update_really_mutates(self):
        db = build_db("RC-NVM", "column")
        before = int(db.table("t").field_values("f3")[0])
        outcome = db.execute("UPDATE t SET f3 = 123456", simulate=False)
        assert outcome.result.count == db.table("t").n_tuples
        assert int(db.table("t").field_values("f3")[0]) == 123456 != before

    def test_wide_aggregate(self, any_system_name):
        db = make_database(any_system_name, verify=True)
        layout = "column" if db.memory.supports_column else "row"
        db.create_table("w", [("k", 8), ("wide", 32), ("z", 8)], layout=layout)
        db.insert_many("w", [(i, (i, 2 * i, 3 * i, 4 * i), i) for i in range(100)])
        outcome = db.execute("SELECT SUM(wide) FROM w", simulate=False)
        assert outcome.result.value == sum(10 * i for i in range(100))


class TestTraceProperties:
    def test_dram_trace_never_column_oriented(self):
        db = build_db("DRAM", "row")
        for sql in QUERIES[:6]:
            plan = db.plan(sql)
            _result, trace = db.executor.execute(plan)
            assert all(a.orientation is not Orientation.COLUMN for a in trace)

    def test_rcnvm_scan_uses_cload(self):
        db = build_db("RC-NVM", "column")
        plan = db.plan("SELECT SUM(f2) FROM t WHERE f1 > 300")
        _result, trace = db.executor.execute(plan)
        assert any(a.op == Op.CREAD for a in trace)

    def test_gsdram_trace_contains_gathers(self):
        db = build_db("GS-DRAM", "row", fields=8)  # power-of-two tuple
        plan = db.plan("SELECT SUM(f2) FROM t WHERE f1 > 300")
        _result, trace = db.executor.execute(plan)
        gathers = [a for a in trace if a.op == Op.GATHER]
        assert gathers
        assert all(a.coord is not None for a in gathers)

    def test_gather_addresses_unique_per_field(self):
        db = build_db("GS-DRAM", "row", fields=8)
        plan = db.plan("SELECT SUM(f2) FROM t WHERE f1 > 300")
        _result, trace = db.executor.execute(plan)
        addresses = [a.address for a in trace if a.op == Op.GATHER]
        assert len(addresses) == len(set(addresses))

    def test_update_trace_contains_stores(self):
        db = build_db("RC-NVM", "column")
        plan = db.plan("UPDATE t SET f3 = 9 WHERE f1 > 900")
        _result, trace = db.executor.execute(plan)
        assert any(a.is_write for a in trace)

    def test_full_scan_on_rcnvm_column_layout_goes_vertical(self):
        db = build_db("RC-NVM", "column", n=650)
        plan = db.plan("SELECT * FROM t WHERE f1 > 10")
        _result, trace = db.executor.execute(plan)
        # Tall, narrow COLUMN-layout chunks are scanned column-wise.
        assert any(a.op == Op.CREAD for a in trace)

    def test_trace_sizes_are_positive_multiples_of_words(self):
        db = build_db("RC-NVM", "column")
        plan = db.plan("SELECT f3, f4 FROM t WHERE f1 > 700")
        _result, trace = db.executor.execute(plan)
        assert all(a.size > 0 and a.size % 8 == 0 for a in trace)


class TestGroupCachingTrace:
    def build_wide_db(self):
        db = make_database("RC-NVM", verify=True)
        db.create_table("w", [("k", 8), ("wide", 32), ("z", 8)], layout="column")
        db.insert_many("w", [(i, (i, i, i, i), i) for i in range(256)])
        return db

    def test_grouped_trace_pins_and_unpins(self):
        db = self.build_wide_db()
        plan = db.plan("SELECT SUM(wide) FROM w", group_lines=8)
        _result, trace = db.executor.execute(plan)
        assert any(a.pin for a in trace)
        unpins = [a for a in trace if a.op == Op.UNPIN]
        pins = [a for a in trace if a.pin]
        assert len(unpins) == len(pins)

    def test_naive_trace_has_no_pins(self):
        db = self.build_wide_db()
        plan = db.plan("SELECT SUM(wide) FROM w", group_lines=0)
        _result, trace = db.executor.execute(plan)
        assert not any(a.pin for a in trace)
        assert not any(a.op == Op.UNPIN for a in trace)

    def test_grouped_faster_than_naive(self):
        db = self.build_wide_db()
        naive = db.execute("SELECT SUM(wide) FROM w", group_lines=0).cycles
        db2 = self.build_wide_db()
        grouped = db2.execute("SELECT SUM(wide) FROM w", group_lines=16).cycles
        assert grouped < naive
