"""Multi-core machine: interleaved execution, sharing, contention."""

import pytest

from repro.core import isa
from repro.core.addressing import Coordinate
from repro.cpu.multicore import MulticoreMachine
from repro.memsim.system import make_small_dram, make_small_rcnvm


def machine(system="RC-NVM", n_cores=2, **kwargs):
    memory = make_small_rcnvm() if system == "RC-NVM" else make_small_dram()
    kwargs.setdefault("l1_kib", 4)
    kwargs.setdefault("llc_kib", 64)
    return MulticoreMachine(memory, n_cores=n_cores, **kwargs), memory


def row_trace(memory, rows, bank=0, **kwargs):
    return [
        isa.load(memory.mapper.encode_row(Coordinate(0, 0, bank, 0, r, 0)), size=64, **kwargs)
        for r in rows
    ]


class TestBasics:
    def test_empty(self):
        m, _mem = machine()
        result = m.run([[], []])
        assert result.cycles == 0

    def test_single_core_runs(self):
        m, mem = machine(n_cores=1)
        result = m.run([row_trace(mem, range(16))])
        assert result.cores[0].accesses == 16
        assert result.cores[0].misses == 16
        assert result.cycles > 0

    def test_too_many_traces_rejected(self):
        m, mem = machine(n_cores=1)
        with pytest.raises(ValueError):
            m.run([[], []])

    def test_per_core_results(self):
        m, mem = machine(n_cores=2)
        result = m.run([row_trace(mem, range(8)), row_trace(mem, range(8, 24))])
        assert result.cores[0].accesses == 8
        assert result.cores[1].accesses == 16
        assert result.total_accesses == 24


class TestSharing:
    def test_second_core_hits_llc(self):
        m, mem = machine(n_cores=2)
        trace = row_trace(mem, range(8))
        result = m.run([trace, list(trace)])
        # One core fetched from memory, the other found data in the LLC
        # (or vice versa, interleaved).
        total_misses = sum(core.misses for core in result.cores)
        total_llc_hits = sum(core.llc_hits for core in result.cores)
        assert total_misses == 8
        assert total_llc_hits == 8

    def test_write_sharing_invalidates(self):
        m, mem = machine(n_cores=2)
        addr = mem.mapper.encode_row(Coordinate(0, 0, 0, 0, 0, 0))
        reader = [isa.load(addr, size=64) for _ in range(4)]
        writer = [isa.store(addr, size=64) for _ in range(4)]
        result = m.run([reader, writer])
        assert result.coherence["invalidations_sent"] + result.coherence["downgrades"] > 0

    def test_coherence_cycles_charged(self):
        m, mem = machine(n_cores=2)
        addr = mem.mapper.encode_row(Coordinate(0, 0, 0, 0, 0, 0))
        result = m.run(
            [[isa.load(addr, size=64)], [isa.store(addr, size=64)]]
        )
        assert sum(core.coherence_cycles for core in result.cores) > 0


class TestContention:
    def test_two_cores_slower_than_one_on_same_bank(self):
        m1, mem1 = machine(n_cores=1)
        solo = m1.run([row_trace(mem1, range(64))]).cycles
        m2, mem2 = machine(n_cores=2)
        both = m2.run(
            [row_trace(mem2, range(64)), row_trace(mem2, range(64, 128))]
        ).cycles
        # Sharing one memory is slower than one core alone, but much
        # faster than twice the solo time would suggest if there were no
        # bank parallelism at all.
        assert both > solo

    def test_rcnvm_synonym_stats_present(self):
        m, mem = machine("RC-NVM", n_cores=2)
        result = m.run([row_trace(mem, range(4)), []])
        assert result.synonym is not None

    def test_dram_has_no_synonym(self):
        m, mem = machine("DRAM", n_cores=2)
        result = m.run([row_trace(mem, range(4)), []])
        assert result.synonym == {}


class TestMixedOrientations:
    def test_row_and_column_cores(self):
        m, mem = machine("RC-NVM", n_cores=2)
        rows = row_trace(mem, range(16))
        cols = [
            isa.cload(mem.mapper.encode_col(Coordinate(0, 0, 0, 0, r, 5)), size=64)
            for r in range(0, 128, 8)
        ]
        result = m.run([rows, cols])
        assert result.memory["col_oriented"] > 0
        assert result.memory["row_oriented"] > 0
