"""Bank state machine: buffer hits, conflicts, orientation switches."""

import pytest

from repro.core.addressing import Orientation
from repro.errors import CapabilityError
from repro.memsim.bank import Bank
from repro.memsim.request import MemRequest
from repro.memsim.stats import MemoryStats
from repro.memsim.timing import DDR3_1333_DRAM, LPDDR3_800_RCNVM


def request(row=0, col=0, subarray=0, orientation=Orientation.ROW,
            is_write=False, arrival=0):
    return MemRequest(
        channel=0, rank=0, bank=0, subarray=subarray, row=row, col=col,
        orientation=orientation, is_write=is_write, arrival=arrival,
    )


@pytest.fixture
def bank():
    return Bank(LPDDR3_800_RCNVM, supports_column=True)


@pytest.fixture
def stats():
    return MemoryStats()


class TestBufferStates:
    def test_first_access_is_empty_miss(self, bank, stats):
        bank.prepare(request(row=3), stats)
        assert stats.buffer_empty_misses == 1
        assert stats.activations == 1

    def test_same_row_hits(self, bank, stats):
        bank.prepare(request(row=3, col=1), stats)
        bank.prepare(request(row=3, col=2), stats)
        assert stats.buffer_hits == 1

    def test_different_row_conflicts(self, bank, stats):
        bank.prepare(request(row=3), stats)
        bank.prepare(request(row=4), stats)
        assert stats.buffer_conflicts == 1
        assert stats.activations == 2

    def test_different_subarray_conflicts(self, bank, stats):
        bank.prepare(request(row=3, subarray=0), stats)
        bank.prepare(request(row=3, subarray=1), stats)
        assert stats.buffer_conflicts == 1

    def test_orientation_switch_counted(self, bank, stats):
        bank.prepare(request(row=3), stats)
        bank.prepare(request(col=3, orientation=Orientation.COLUMN), stats)
        assert stats.orientation_switches == 1
        assert bank.open_kind is Orientation.COLUMN

    def test_column_hit_after_switch(self, bank, stats):
        bank.prepare(request(col=3, row=0, orientation=Orientation.COLUMN), stats)
        bank.prepare(request(col=3, row=9, orientation=Orientation.COLUMN), stats)
        assert stats.buffer_hits == 1

    def test_exclusive_buffers_invariant(self, bank, stats):
        """Row and column buffer are never active simultaneously: the
        open state is a single (kind, subarray, index)."""
        bank.prepare(request(row=3), stats)
        assert bank.open_kind is Orientation.ROW
        bank.prepare(request(col=5, orientation=Orientation.COLUMN), stats)
        assert bank.open_kind is Orientation.COLUMN
        assert bank.open_index == 5


class TestTiming:
    def test_hit_is_cas_only(self, bank, stats):
        bank.prepare(request(row=3), stats)
        start, data_at = bank.prepare(request(row=3, col=9, arrival=10_000), stats)
        assert data_at - start == LPDDR3_800_RCNVM.cas_cpu

    def test_empty_miss_pays_rcd(self, bank, stats):
        start, data_at = bank.prepare(request(row=3), stats)
        t = LPDDR3_800_RCNVM
        assert data_at - start == t.rcd_cpu + t.cas_cpu

    def test_clean_conflict_pays_rp_and_rcd(self, bank, stats):
        bank.prepare(request(row=3), stats)
        start, data_at = bank.prepare(request(row=4, arrival=10_000), stats)
        t = LPDDR3_800_RCNVM
        assert data_at - start == t.rp_cpu + t.rcd_cpu + t.cas_cpu

    def test_dirty_flush_pays_write_pulse(self, bank, stats):
        bank.prepare(request(row=3, is_write=True), stats)
        start, data_at = bank.prepare(request(row=4, arrival=10_000), stats)
        t = LPDDR3_800_RCNVM
        assert data_at - start == t.write_pulse_cpu + t.rp_cpu + t.rcd_cpu + t.cas_cpu
        assert stats.dirty_flushes == 1

    def test_write_marks_dirty(self, bank, stats):
        bank.prepare(request(row=3, is_write=True), stats)
        assert bank.dirty

    def test_activation_clears_dirty(self, bank, stats):
        bank.prepare(request(row=3, is_write=True), stats)
        bank.prepare(request(row=4), stats)
        assert not bank.dirty

    def test_dram_honours_tras(self, stats):
        bank = Bank(DDR3_1333_DRAM, supports_column=False)
        bank.prepare(request(row=3), stats)
        activated = bank.activated_at
        # Immediately conflicting: precharge must wait until tRAS expires.
        start, data_at = bank.prepare(request(row=4), stats)
        t = DDR3_1333_DRAM
        assert data_at >= activated + t.ras_cpu + t.rp_cpu + t.rcd_cpu + t.cas_cpu

    def test_ready_pipelines_at_burst_granularity(self, bank, stats):
        bank.prepare(request(row=3), stats)
        ready_after_first = bank.ready_at
        start, _ = bank.prepare(request(row=3, col=5), stats)
        assert start == ready_after_first
        assert bank.ready_at == start + LPDDR3_800_RCNVM.burst_cpu

    def test_arrival_respected(self, bank, stats):
        start, _ = bank.prepare(request(row=3, arrival=500), stats)
        assert start >= 500


class TestCapabilities:
    def test_column_access_needs_column_buffer(self, stats):
        bank = Bank(DDR3_1333_DRAM, supports_column=False)
        with pytest.raises(CapabilityError):
            bank.prepare(request(orientation=Orientation.COLUMN), stats)

    def test_gather_uses_row_buffer(self, stats):
        bank = Bank(DDR3_1333_DRAM, supports_column=False)
        bank.prepare(request(row=7, orientation=Orientation.GATHER), stats)
        assert bank.open_kind is Orientation.ROW
        assert bank.open_index == 7


class TestFlush:
    def test_flush_closes_buffer(self, bank, stats):
        bank.prepare(request(row=3), stats)
        bank.flush(stats, now=1000)
        assert bank.open_kind is None

    def test_flush_dirty_pays_pulse(self, bank, stats):
        bank.prepare(request(row=3, is_write=True), stats)
        before = bank.ready_at
        done = bank.flush(stats, now=0)
        t = LPDDR3_800_RCNVM
        assert done == before + t.write_pulse_cpu + t.rp_cpu

    def test_flush_idle_is_noop(self, bank, stats):
        assert bank.flush(stats, now=123) == 123


class TestReset:
    def test_reset_restores_power_on_state(self, bank, stats):
        bank.prepare(request(row=3, is_write=True), stats)
        bank.reset()
        fresh = Bank(LPDDR3_800_RCNVM, supports_column=True)
        for attr in ("open_kind", "open_subarray", "open_index", "dirty",
                     "ready_at", "activated_at", "accesses", "activations"):
            assert getattr(bank, attr) == getattr(fresh, attr)

    def test_reset_keeps_endurance_hooks(self, bank, stats):
        sentinel = object()
        bank.wear_tracker = sentinel
        bank.wear_identity = (0, 0, 0)
        bank.prepare(request(row=3), stats)
        bank.reset()
        assert bank.wear_tracker is sentinel
        assert bank.wear_identity == (0, 0, 0)
