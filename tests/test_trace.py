"""Trace format and ISA constructors."""

import pytest

from repro.core import isa
from repro.core.addressing import Coordinate, Orientation
from repro.cpu.trace import Access, Op, merge_traces


class TestAccess:
    def test_defaults(self):
        access = Access(Op.READ, 0x100)
        assert access.size == 8 and access.gap == 1
        assert not access.barrier and not access.pin
        assert access.orientation is Orientation.ROW

    def test_orientation_follows_op(self):
        assert Access(Op.CREAD, 0).orientation is Orientation.COLUMN
        assert Access(Op.CWRITE, 0).orientation is Orientation.COLUMN
        assert Access(Op.GATHER, 0).orientation is Orientation.GATHER
        assert Access(Op.WRITE, 0).orientation is Orientation.ROW

    def test_orientation_override(self):
        access = Access(Op.UNPIN, 0, orientation=Orientation.ROW)
        assert access.orientation is Orientation.ROW

    def test_is_write(self):
        assert Access(Op.WRITE, 0).is_write
        assert Access(Op.CWRITE, 0).is_write
        assert not Access(Op.READ, 0).is_write
        assert not Access(Op.GATHER, 0).is_write

    def test_repr_mentions_flags(self):
        access = Access(Op.CREAD, 0x40, barrier=True, pin=True)
        text = repr(access)
        assert "B" in text and "P" in text and "CREAD" in text


class TestIsaConstructors:
    def test_load_store(self):
        assert isa.load(0x10).op == Op.READ
        assert isa.store(0x10).op == Op.WRITE

    def test_cload_cstore(self):
        assert isa.cload(0x10).op == Op.CREAD
        assert isa.cstore(0x10).op == Op.CWRITE

    def test_gather_carries_coord(self):
        coord = Coordinate(0, 0, 0, 0, 1, 2)
        access = isa.gather_load(0x10, coord)
        assert access.op == Op.GATHER and access.coord == coord
        assert access.size == 64

    def test_unpin_orientation(self):
        assert isa.unpin(0, 64).orientation is Orientation.COLUMN
        assert isa.unpin(0, 64, Orientation.ROW).orientation is Orientation.ROW

    def test_pin_flag(self):
        assert isa.cload(0x10, pin=True).pin
        assert not isa.cload(0x10).pin


class TestMergeTraces:
    def test_concatenates_lazily(self):
        first = [isa.load(0), isa.load(8)]
        second = [isa.store(16)]
        merged = merge_traces(first, second)
        assert [a.address for a in merged] == [0, 8, 16]

    def test_empty(self):
        assert list(merge_traces()) == []


class TestErrorsHierarchy:
    def test_all_errors_are_repro_errors(self):
        from repro import errors

        for name in (
            "AddressError",
            "CapabilityError",
            "ConfigurationError",
            "LayoutError",
            "ProtocolError",
            "SqlError",
        ):
            assert issubclass(getattr(errors, name), errors.ReproError)

    def test_tracefile_error(self):
        from repro.cpu.tracefile import TraceFormatError
        from repro.errors import ReproError

        assert issubclass(TraceFormatError, ReproError)

    def test_ecc_error(self):
        from repro.errors import ReproError
        from repro.memsim.ecc import UncorrectableError

        assert issubclass(UncorrectableError, ReproError)
