"""Functional memory: lazy subarrays, runs, bounds."""

import numpy as np
import pytest

from repro.core.addressing import Coordinate
from repro.errors import AddressError
from repro.geometry import RCNVM_GEOMETRY, SMALL_RCNVM_GEOMETRY
from repro.imdb.physmem import PhysicalMemory


@pytest.fixture
def mem():
    return PhysicalMemory(SMALL_RCNVM_GEOMETRY)


class TestLaziness:
    def test_nothing_materialized_initially(self, mem):
        assert mem.materialized_subarrays == 0

    def test_full_geometry_is_cheap(self):
        # The 4 GB Table 1 geometry is usable: only touched subarrays
        # allocate backing storage.
        big = PhysicalMemory(RCNVM_GEOMETRY)
        big.write_cell(100, 5, 5, 42)
        assert big.materialized_subarrays == 1
        assert big.read_cell(100, 5, 5) == 42

    def test_subarray_shape(self, mem):
        grid = mem.subarray(0)
        assert grid.shape == (SMALL_RCNVM_GEOMETRY.rows, SMALL_RCNVM_GEOMETRY.cols)
        assert grid.dtype == np.int64

    def test_out_of_range_subarray(self, mem):
        with pytest.raises(AddressError):
            mem.subarray(SMALL_RCNVM_GEOMETRY.total_subarrays)


class TestSubarrayCoord:
    def test_roundtrip(self, mem):
        for index in (0, 1, 7, mem.geometry.total_subarrays - 1):
            channel, rank, bank, sub = mem.subarray_coord(index)
            coord = Coordinate(channel, rank, bank, sub, 0, 0)
            assert mem.mapper.subarray_index(coord) == index

    def test_coordinate_builder(self, mem):
        coord = mem.coordinate(3, 10, 20)
        assert (coord.row, coord.col) == (10, 20)
        assert mem.mapper.subarray_index(coord) == 3


class TestCellAccess:
    def test_write_read_cell(self, mem):
        mem.write_cell(2, 3, 4, -17)
        assert mem.read_cell(2, 3, 4) == -17

    def test_coord_access(self, mem):
        coord = mem.coordinate(5, 7, 9)
        mem.write_coord(coord, 99)
        assert mem.read_coord(coord) == 99


class TestRuns:
    def test_vertical_roundtrip(self, mem):
        values = np.arange(10, dtype=np.int64)
        mem.write_vertical(0, col=3, row_start=5, values=values)
        out = mem.read_vertical(0, col=3, row_start=5, count=10)
        assert (out == values).all()

    def test_horizontal_roundtrip(self, mem):
        values = np.arange(16, dtype=np.int64) * 3
        mem.write_horizontal(1, row=2, col_start=8, values=values)
        out = mem.read_horizontal(1, row=2, col_start=8, count=16)
        assert (out == values).all()

    def test_vertical_and_horizontal_agree(self, mem):
        mem.write_cell(0, 10, 20, 1234)
        assert mem.read_vertical(0, 20, 10, 1)[0] == 1234
        assert mem.read_horizontal(0, 10, 20, 1)[0] == 1234

    def test_strided_read(self, mem):
        for i in range(6):
            mem.write_cell(0, 4 * i, 7, i)
        out = mem.read_strided(0, col=7, row_start=0, stride=4, count=6)
        assert list(out) == [0, 1, 2, 3, 4, 5]

    def test_read_returns_copy(self, mem):
        mem.write_cell(0, 0, 0, 5)
        out = mem.read_horizontal(0, 0, 0, 4)
        out[0] = 999
        assert mem.read_cell(0, 0, 0) == 5


class TestBounds:
    def test_vertical_overflow(self, mem):
        with pytest.raises(AddressError):
            mem.read_vertical(0, 0, SMALL_RCNVM_GEOMETRY.rows - 2, 5)

    def test_horizontal_overflow(self, mem):
        with pytest.raises(AddressError):
            mem.read_horizontal(0, 0, SMALL_RCNVM_GEOMETRY.cols - 1, 3)

    def test_bad_column(self, mem):
        with pytest.raises(AddressError):
            mem.read_vertical(0, SMALL_RCNVM_GEOMETRY.cols, 0, 1)

    def test_negative_start(self, mem):
        with pytest.raises(AddressError):
            mem.read_horizontal(0, 0, -1, 2)
