"""Integration tests asserting the paper's headline claims at small scale.

These run the real pipeline (workload -> planner -> executor -> cache and
memory simulation) and check the *shape* of the results: who wins, where
the exception is, which baselines move.
"""

import pytest

from repro.harness.experiment import run_sql_suite, run_group_caching_sweep
from repro.workloads.microbench import run_microbench

SMALL_CACHES = dict(l1_kib=4, l2_kib=16, l3_kib=128)
SCALE = 0.05


@pytest.fixture(scope="module")
def suite():
    return run_sql_suite(
        qids=("Q1", "Q2", "Q3", "Q4", "Q6", "Q7", "Q12"),
        scale=SCALE,
        small=True,
        cache_config=SMALL_CACHES,
        verify=True,
    )


class TestFigure18Claims:
    def test_rcnvm_beats_dram_except_q3(self, suite):
        for qid, row in suite.items():
            if qid == "Q3":
                continue
            assert row["RC-NVM"].cycles < row["DRAM"].cycles, qid

    def test_q3_favours_dram(self, suite):
        # "Q3 is translated into sequential row-oriented memory access,
        # whose pattern is most suitable for DRAM."
        row = suite["Q3"]
        assert row["DRAM"].cycles <= row["RC-NVM"].cycles

    def test_rram_slower_than_dram_on_row_patterns(self, suite):
        assert suite["Q3"]["RRAM"].cycles > suite["Q3"]["DRAM"].cycles

    def test_gsdram_helps_only_gatherable_queries(self, suite):
        # table-a queries (power-of-two tuples) improve; table-b queries
        # (20-word tuples) fall back to DRAM behaviour.
        assert suite["Q4"]["GS-DRAM"].cycles < suite["Q4"]["DRAM"].cycles
        assert suite["Q6"]["GS-DRAM"].cycles < suite["Q6"]["DRAM"].cycles
        for qid in ("Q2", "Q3", "Q7", "Q12"):
            assert suite[qid]["GS-DRAM"].cycles == pytest.approx(
                suite[qid]["DRAM"].cycles, rel=0.01
            ), qid

    def test_rcnvm_beats_gsdram(self, suite):
        for qid in ("Q1", "Q4", "Q6"):
            assert suite[qid]["RC-NVM"].cycles < suite[qid]["GS-DRAM"].cycles


class TestFigure19Claims:
    def test_memory_accesses_reduced(self, suite):
        # "LLC misses are less than a third of those of DRAM on average."
        ratios = [
            row["RC-NVM"].llc_misses / row["DRAM"].llc_misses
            for qid, row in suite.items()
            if qid != "Q3"
        ]
        assert sum(ratios) / len(ratios) < 1 / 2

    def test_gsdram_does_not_reduce_accesses_on_table_b(self, suite):
        assert suite["Q7"]["GS-DRAM"].llc_misses == suite["Q7"]["DRAM"].llc_misses


class TestFigure20Claims:
    def test_rcnvm_buffer_miss_rate_not_worse(self, suite):
        for qid, row in suite.items():
            assert row["RC-NVM"].buffer_miss_rate <= row["DRAM"].buffer_miss_rate + 0.15, qid

    def test_gather_does_not_fix_buffer_misses(self, suite):
        # "the miss rate of column-buffer is not reduced after using
        # GS-DRAM; it only scatters data into multiple rows".
        assert (
            suite["Q4"]["GS-DRAM"].buffer_miss_rate
            >= suite["Q4"]["DRAM"].buffer_miss_rate
        )


class TestFigure21Claims:
    def test_overhead_small(self, suite):
        # Paper range: 0.2% - 3.4%; allow headroom at tiny scale.
        for qid, row in suite.items():
            assert row["RC-NVM"].coherence_ratio < 0.10, qid

    def test_conventional_systems_have_zero_overhead(self, suite):
        for row in suite.values():
            assert row["DRAM"].coherence_ratio == 0.0


class TestFigure17Claims:
    @pytest.fixture(scope="class")
    def micro(self):
        return run_microbench(n_tuples=2048, n_fields=8, cache_config=SMALL_CACHES)

    def test_column_scans_dramatically_faster_on_rcnvm(self, micro):
        for kernel, factor in (("col-read-L1", 2), ("col-read-L2", 5)):
            rcnvm = micro[kernel]["RC-NVM"].cycles
            dram = micro[kernel]["DRAM"].cycles
            assert dram > factor * rcnvm, kernel

    def test_row_scans_slightly_favour_dram(self, micro):
        rcnvm = micro["row-read-L1"]["RC-NVM"].cycles
        dram = micro["row-read-L1"]["DRAM"].cycles
        assert dram < rcnvm < 3 * dram

    def test_rcnvm_close_to_rram_on_row_reads(self, micro):
        # Paper: "RC-NVM is 4% slower than RRAM for the cache coherence
        # overhead" — allow a loose band.
        rcnvm = micro["row-read-L1"]["RC-NVM"].cycles
        rram = micro["row-read-L1"]["RRAM"].cycles
        assert rram <= rcnvm <= 1.25 * rram

    def test_column_layout_best_for_column_scans(self, micro):
        assert (
            micro["col-read-L2"]["RC-NVM"].cycles
            <= micro["col-read-L1"]["RC-NVM"].cycles
        )


class TestFigure23Claims:
    def test_group_caching_improves_and_grows(self):
        sweep = run_group_caching_sweep(
            group_sizes=(0, 8, 32),
            scale=0.05,
            small=True,
            cache_config=SMALL_CACHES,
        )
        for qid, per_size in sweep.items():
            assert per_size[8].cycles < per_size[0].cycles, qid
            # At this tiny scale group sizes beyond the chunk height only
            # differ by noise; larger groups must at least stay close.
            assert per_size[32].cycles <= per_size[8].cycles * 1.15, qid
