"""The differential fuzzing harness itself: generator, oracle, shrinker.

The harness is only trustworthy if it is deterministic (a CI failure
must replay locally from the seed alone), if everything it generates
stays inside the supported dialect, and if a short run over real
configs comes back clean.  The GS-DRAM regression at the bottom pins
the first real bug the fuzzer found.
"""

import pytest

from repro.errors import SqlError
from repro.fuzz import CONFIGS, CaseGenerator, run_case, run_fuzz, shrink_case
from repro.fuzz.grammar import FuzzCase, TableSpec, render_sql
from repro.fuzz.oracle import SqliteOracle, build_database
from repro.fuzz.shrink import clause_count
from repro.imdb.sql_parser import parse

FAST_KEYS = ["dram-row", "rcnvm-col"]
FAST_CONFIGS = [CONFIGS[key] for key in FAST_KEYS]


class TestGenerator:
    def test_deterministic_per_seed_and_index(self):
        for index in (0, 3, 17):
            a = CaseGenerator(seed=5).case(index)
            b = CaseGenerator(seed=5).case(index)
            assert a.to_dict() == b.to_dict()

    def test_different_seeds_differ(self):
        a = CaseGenerator(seed=1).case(0)
        b = CaseGenerator(seed=2).case(0)
        assert a.to_dict() != b.to_dict()

    def test_serialization_round_trip(self):
        case = CaseGenerator(seed=3).case(4)
        assert FuzzCase.from_dict(case.to_dict()).to_dict() == case.to_dict()

    def test_generated_sql_stays_inside_the_dialect(self):
        """Every non-raw statement must parse; raw statements exist only
        to exercise error paths and must be flagged expect_error."""
        generator = CaseGenerator(seed=11)
        parsed = 0
        for index in range(30):
            case = generator.case(index)
            for stmt in case.statements:
                sql, params = render_sql(stmt)
                if stmt["kind"] == "raw":
                    assert stmt.get("expect_error")
                    continue
                node = parse(sql)
                assert node is not None
                parsed += 1
                for name in params:
                    assert f" {name}" in sql or f"> {name}" in sql or name in sql
        assert parsed > 50

    def test_statement_mix_covers_all_kinds(self):
        generator = CaseGenerator(seed=0)
        kinds = set()
        aggs = ordered = 0
        for index in range(60):
            for stmt in generator.case(index).statements:
                kinds.add(stmt["kind"])
                if stmt.get("agg"):
                    aggs += 1
                if stmt.get("order_by"):
                    ordered += 1
        assert kinds == {"select", "join", "update", "raw"}
        assert aggs > 5 and ordered > 5

    def test_unknown_profile_rejected(self):
        with pytest.raises(ValueError):
            CaseGenerator(seed=0, profile="read-mostly")

    def test_write_heavy_profile_skews_toward_updates(self):
        """The --write-heavy mix must actually be UPDATE-dominated (it
        exists to exercise coalescing, read-around-write, and the
        write-direction planner differentially), while still emitting
        every statement kind and staying deterministic per seed."""
        counts = {}
        total = 0
        generator = CaseGenerator(seed=0, profile="write-heavy")
        for index in range(40):
            for stmt in generator.case(index).statements:
                counts[stmt["kind"]] = counts.get(stmt["kind"], 0) + 1
                total += 1
        assert set(counts) == {"select", "join", "update", "raw"}
        assert counts["update"] / total > 0.4  # ~55% by construction
        default_updates = sum(
            1
            for index in range(40)
            for stmt in CaseGenerator(seed=0).case(index).statements
            if stmt["kind"] == "update"
        )
        assert counts["update"] > 2 * default_updates
        again = CaseGenerator(seed=0, profile="write-heavy")
        assert again.case(7).to_dict() == generator.case(7).to_dict()


class TestConfigs:
    def test_lattice_sanity(self):
        assert list(CONFIGS)[0] == "dram-row"  # hosts the reference engine
        systems = {c.system for c in CONFIGS.values()}
        assert systems == {"DRAM", "GS-DRAM", "RRAM", "RC-NVM", "TIERED"}
        assert any(c.group_lines for c in CONFIGS.values())  # Z-order point
        assert any(c.ecc for c in CONFIGS.values())
        assert all(c.key == key for key, c in CONFIGS.items())

    def test_build_database_honors_config(self):
        case = CaseGenerator(seed=6).case(1)
        db = build_database(CONFIGS["rcnvm-col"], case)
        for spec in case.tables:
            assert db.table(spec.name).n_tuples == len(spec.rows)


class TestOracle:
    def test_short_run_is_clean(self):
        problems = []
        for index in range(3):
            case = CaseGenerator(seed=13).case(index)
            problems.extend(run_case(case, configs=FAST_CONFIGS))
        assert problems == []

    def test_run_fuzz_report(self):
        report = run_fuzz(seed=13, iterations=3, config_keys=FAST_KEYS)
        assert report.ok
        assert report.iterations == 3
        assert report.statements >= 3
        assert "0 failing" in report.summary()

    def test_sqlite_oracle_agrees_on_a_known_case(self):
        spec = TableSpec(name="t", fields=[["f1", 8], ["f2", 8]],
                         rows=[[3, 30], [1, 10], [2, 20]])
        case = FuzzCase(seed=0, tables=[spec], statements=[])
        oracle = SqliteOracle(case)
        stmt = {"kind": "select", "table": "t", "items": ["f1"],
                "agg": None, "where": [], "order_by": ["f1", True],
                "limit": 2, "expect_error": False}
        kind, rows, key_index, limit = oracle.execute(stmt)
        assert kind == "rows_ordered"
        assert rows[:limit] == [(3,), (2,)]

    def test_oracle_detects_a_seeded_discrepancy(self):
        """A case whose data disagrees between simulated stack and sqlite
        mirror must produce problems — the oracle is not vacuous."""
        spec = TableSpec(name="t", fields=[["f1", 8]], rows=[[1], [2]])
        case = FuzzCase(seed=0, tables=[spec], statements=[
            {"kind": "select", "table": "t", "items": ["f1"], "agg": None,
             "where": [{"field": "f1", "op": ">", "value": 0, "param": None}],
             "order_by": None, "limit": None, "expect_error": False},
        ])
        clean = run_case(case, configs=FAST_CONFIGS)
        assert clean == []
        # Same statements, but sqlite sees different rows.
        broken = FuzzCase.from_dict(case.to_dict())
        real_rows = broken.tables[0].rows

        class LyingOracle(SqliteOracle):
            def __init__(self, c):
                c.tables[0].rows = [[1], [99]]
                super().__init__(c)
                c.tables[0].rows = real_rows

        import repro.fuzz.oracle as oracle_module
        original = oracle_module.SqliteOracle
        oracle_module.SqliteOracle = LyingOracle
        try:
            problems = run_case(broken, configs=FAST_CONFIGS)
        finally:
            oracle_module.SqliteOracle = original
        assert problems and any("sqlite" in p for p in problems)

    def test_unrunnable_statement_is_a_finding_not_a_crash(self):
        """A corpus case naming an unknown column without expect_error
        must surface as discrepancies from every oracle, never as a raw
        exception out of run_case."""
        spec = TableSpec(name="t", fields=[["f1", 8]], rows=[[1]])
        case = FuzzCase(seed=0, tables=[spec], statements=[
            {"kind": "select", "table": "t", "items": ["nope"], "agg": None,
             "where": [], "order_by": None, "limit": None,
             "expect_error": False},
        ])
        problems = run_case(case, configs=FAST_CONFIGS)
        assert any("sqlite oracle raised" in p for p in problems)
        assert any("unexpected SqlError" in p for p in problems)


class TestShrinker:
    def make_case(self):
        spec = TableSpec(
            name="t", fields=[["f1", 8], ["f2", 8]],
            rows=[[i, i * 10] for i in range(12)], indexes=["f1"],
        )
        statements = [
            {"kind": "select", "table": "t", "items": ["f1"], "agg": None,
             "where": [{"field": "f1", "op": ">", "value": 2, "param": None},
                       {"field": "f2", "op": "<", "value": 90, "param": None}],
             "order_by": None, "limit": None, "expect_error": False},
            {"kind": "update", "table": "t",
             "set": [["f2", 5, None]],
             "where": [{"field": "f1", "op": "=", "value": 3, "param": None}]},
            {"kind": "select", "table": "t", "items": ["f1", "f2"],
             "agg": None, "where": [], "order_by": ["f1", False],
             "limit": 4, "expect_error": False},
        ]
        return FuzzCase(seed=0, tables=[spec], statements=statements)

    def test_shrinks_to_the_failing_kernel(self):
        def still_fails(case):
            return any(s.get("limit") is not None for s in case.statements)

        shrunk = shrink_case(self.make_case(), still_fails)
        assert still_fails(shrunk)
        assert len(shrunk.statements) == 1
        assert shrunk.statements[0]["limit"] is not None
        assert clause_count(shrunk) == 0
        assert len(shrunk.tables[0].rows) <= 2
        assert shrunk.tables[0].indexes == []

    def test_shrinker_never_returns_a_passing_case(self):
        def still_fails(case):
            return any(s["kind"] == "update" for s in case.statements)

        shrunk = shrink_case(self.make_case(), still_fails)
        assert still_fails(shrunk)
        assert all(s["kind"] == "update" for s in shrunk.statements)

    def test_clause_count(self):
        assert clause_count(self.make_case()) == 3


class TestGsdramColumnRegression:
    """Found by the fuzzer: GS-DRAM planned a gathered scan over a
    column-major chunk, whose strided lines do not hold the gathered
    fields, and died on an internal assertion.  The planner must fall
    back to a plain scan and still match the reference."""

    def test_gsdram_column_layout_select(self):
        db_kwargs = dict(verify=True)
        from conftest import make_database
        db = make_database("GS-DRAM", **db_kwargs)
        db.create_table(
            "t", [("f1", 8), ("f2", 8), ("f3", 8)], layout="column"
        )
        db.insert_many("t", [(i, i * 7 % 13, i * 3) for i in range(40)])
        for sql in (
            "SELECT f1, f3 FROM t WHERE f2 > 5",
            "SELECT SUM(f3) FROM t WHERE f1 < 30",
            "SELECT * FROM t WHERE f2 = 1",
        ):
            outcome = db.execute(sql, simulate=False)
            assert outcome.result is not None  # verify=True checks reference

    def test_fuzz_configs_include_the_regressing_pair(self):
        # The lattice must keep exercising GS-DRAM; the column-layout
        # interaction is covered by gsdram-row + per-case layouts and
        # the direct test above.
        assert "gsdram-row" in CONFIGS


class TestCrashFuzz:
    """Kill-and-recover mode: durable configs + seeded crash injector."""

    def test_short_campaign_is_clean(self):
        from repro.fuzz.crashes import run_crash_fuzz

        report = run_crash_fuzz(seed=0, iterations=5)
        assert report.ok, report.summary()
        assert report.iterations == 5

    def test_crash_case_is_deterministic(self):
        from repro.fuzz.crashes import run_crash_case
        from repro.fuzz.grammar import CaseGenerator

        case = CaseGenerator(3).case(0)
        first = run_crash_case(case, injector_seed=11)
        second = run_crash_case(case, injector_seed=11)
        assert first == second

    def test_state_mismatch_is_reported(self):
        """Plant a bug: mirror an *uncommitted* statement into sqlite and
        the state oracle must flag the divergence."""
        from repro.fuzz.crashes import (
            build_durable_database, compare_states,
        )
        from repro.fuzz.grammar import CaseGenerator
        from repro.fuzz.oracle import CONFIGS, SqliteOracle

        case = CaseGenerator(5).case(1)
        config = CONFIGS["rcnvm-row"]
        db = build_durable_database(config, case)
        sq = SqliteOracle(case)
        spec = case.tables[0]
        if not spec.rows:
            return
        narrow = spec.narrow_fields()
        stmt = {
            "kind": "update", "table": spec.name,
            "set": [[narrow[0], 123456, None]], "where": [],
            "expect_error": False,
        }
        sq.execute(stmt)  # sqlite thinks it committed; simulation never ran it
        problems = compare_states(db, sq)
        assert problems, "planted divergence went undetected"
