"""Subarray allocator: striping, translation, exhaustion."""

import pytest

from repro.errors import LayoutError
from repro.geometry import Geometry, SMALL_RCNVM_GEOMETRY
from repro.imdb.allocator import SubarrayAllocator


class TestStriping:
    def test_first_bins_hit_different_channels(self):
        allocator = SubarrayAllocator(SMALL_RCNVM_GEOMETRY)
        g = SMALL_RCNVM_GEOMETRY
        full = (g.cols, g.rows)
        first = allocator.place(*full)
        second = allocator.place(*full)
        mem_coords = []
        from repro.imdb.physmem import PhysicalMemory

        physmem = PhysicalMemory(g)
        for placement in (first, second):
            channel, rank, bank, sub = physmem.subarray_coord(placement.bin_index)
            mem_coords.append((channel, rank, bank))
        assert mem_coords[0] != mem_coords[1]

    def test_claim_order_covers_all_subarrays(self):
        g = SMALL_RCNVM_GEOMETRY
        order = SubarrayAllocator._striped_order(g)
        assert sorted(order) == list(range(g.total_subarrays))


class TestPlacement:
    def test_small_chunks_share_subarray(self):
        allocator = SubarrayAllocator(SMALL_RCNVM_GEOMETRY)
        a = allocator.place(10, 10)
        b = allocator.place(10, 10)
        assert a.bin_index == b.bin_index
        assert (a.x, a.y) != (b.x, b.y)

    def test_rotation_flag_passthrough(self):
        g = SMALL_RCNVM_GEOMETRY
        allocator = SubarrayAllocator(g, allow_rotation=True)
        placement = allocator.place(g.cols // 2, g.rows * 2) \
            if g.rows * 2 <= g.cols else allocator.place(g.rows + 1, 4)
        # One dimension exceeded; rotation must have been applied.
        assert placement.rotated

    def test_rotation_disabled(self):
        g = SMALL_RCNVM_GEOMETRY
        allocator = SubarrayAllocator(g, allow_rotation=False)
        with pytest.raises(LayoutError):
            allocator.place(g.cols + 1, 4)

    def test_exhaustion(self):
        g = Geometry(channels=1, ranks=1, banks=1, subarrays=2, rows=16, cols=16)
        allocator = SubarrayAllocator(g)
        allocator.place(16, 16)
        allocator.place(16, 16)
        with pytest.raises(LayoutError):
            allocator.place(16, 16)

    def test_utilization_tracks_packer(self):
        allocator = SubarrayAllocator(SMALL_RCNVM_GEOMETRY)
        allocator.place(64, 64)
        assert 0 < allocator.utilization() <= 1
        assert allocator.subarrays_used == 1
