"""Circuit-level area/latency models (Figures 4 and 5 anchors)."""

import pytest

from repro.core import circuit
from repro.errors import ConfigurationError
from repro.memsim.timing import LPDDR3_800_RRAM


class TestRcNvmArea:
    def test_paper_anchor_512(self):
        # Figure 4: "the overhead drops to less than 20% when the numbers
        # of WL and BLs are 512"; the paper's design point is ~15%.
        assert circuit.rc_nvm_area_overhead(512) < 0.20
        assert circuit.rc_nvm_area_overhead(512) == pytest.approx(0.15, abs=0.02)

    def test_monotonically_decreasing(self):
        values = [circuit.rc_nvm_area_overhead(n) for n in (16, 32, 64, 128, 256, 512, 1024)]
        assert all(a > b for a, b in zip(values, values[1:]))

    def test_breakdown_consistent(self):
        breakdown = circuit.rc_nvm_area(256)
        assert breakdown.total == breakdown.baseline + breakdown.extra_periphery
        assert breakdown.overhead == pytest.approx(
            circuit.rc_nvm_area_overhead(256)
        )

    def test_cell_array_untouched(self):
        # RC-NVM adds only periphery: the cell array term equals plain
        # crossbar NVM's.
        breakdown = circuit.rc_nvm_area(128)
        assert breakdown.cell_array == circuit.NVM_CELL_F2 * 128 * 128


class TestRcDramArea:
    def test_always_above_200_percent(self):
        # Section 2.2: "larger than 200% bit-per-area".
        for n in circuit.FIGURE4_ARRAY_SIZES:
            assert circuit.rc_dram_area_overhead(n) > 2.0

    def test_grows_with_array_size(self):
        values = [circuit.rc_dram_area_overhead(n) for n in circuit.FIGURE4_ARRAY_SIZES]
        assert all(a < b for a, b in zip(values, values[1:]))

    def test_rc_dram_much_worse_than_rc_nvm(self):
        for n in (128, 256, 512, 1024):
            assert circuit.rc_dram_area_overhead(n) > 5 * circuit.rc_nvm_area_overhead(n)


class TestLatency:
    def test_paper_anchor_512(self):
        # Figure 5: "when the numbers of WL and BLs are 512, the timing
        # overhead is just about 15%".
        assert circuit.rc_nvm_latency_overhead(512) == pytest.approx(0.15, abs=0.01)

    def test_monotonically_increasing(self):
        values = [circuit.rc_nvm_latency_overhead(n) for n in circuit.FIGURE5_ARRAY_SIZES]
        assert all(a < b for a, b in zip(values, values[1:]))

    def test_moderate_at_small_arrays(self):
        assert circuit.rc_nvm_latency_overhead(64) < 0.05


class TestSweeps:
    def test_figure4_rows(self):
        rows = circuit.area_overhead_sweep()
        assert [n for n, _d, _v in rows] == list(circuit.FIGURE4_ARRAY_SIZES)

    def test_figure5_rows(self):
        rows = circuit.latency_overhead_sweep()
        assert len(rows) == len(circuit.FIGURE5_ARRAY_SIZES)

    def test_invalid_size(self):
        with pytest.raises(ConfigurationError):
            circuit.rc_nvm_area_overhead(1)


class TestTimingDerivation:
    def test_scale_timing_matches_table1(self):
        # Applying the N=512 overhead to the RRAM timing yields RC-NVM's
        # Table 1 read path (tRCD 10 -> 12).
        derived = circuit.scale_timing_for_array(LPDDR3_800_RRAM, 512)
        assert derived.t_rcd == 12
        assert derived.t_cas == LPDDR3_800_RRAM.t_cas

    def test_scale_timing_write_pulse(self):
        derived = circuit.scale_timing_for_array(LPDDR3_800_RRAM, 512)
        assert derived.write_pulse >= LPDDR3_800_RRAM.write_pulse
