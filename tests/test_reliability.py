"""End-to-end reliability pipeline: injection, scrubbing, recovery."""

import random

import pytest

from conftest import make_database, simple_rows
from repro.errors import ConfigurationError
from repro.imdb.binpack import Placement
from repro.imdb.chunks import Run
from repro.memsim.endurance import WearTracker
from repro.orientation import Orientation
from repro.reliability import (
    CampaignSpec,
    FaultInjector,
    ScrubScheduler,
    translate_run,
)
from repro.reliability.faults import occupied_rectangles


def make_protected_db(system="RC-NVM", rows=600, layout=None):
    db = make_database(system)
    layout = layout or ("column" if db.memory.supports_column else "row")
    db.create_table("t", [("a", 8), ("b", 8)], layout=layout)
    db.insert_many("t", simple_rows(rows, 2))
    db.enable_reliability()
    return db


def run_device_cells(run):
    if run.vertical:
        return [(run.subarray, run.start + i, run.fixed) for i in range(run.count)]
    return [(run.subarray, run.fixed, run.start + i) for i in range(run.count)]


def chunk_local_of(placement, row, col):
    """Device cell -> chunk-local (row, col) under a placement."""
    if placement.rotated:
        return col - placement.x, row - placement.y
    return row - placement.y, col - placement.x


class TestTranslateRun:
    @pytest.mark.parametrize("old_rotated", [False, True])
    @pytest.mark.parametrize("new_rotated", [False, True])
    @pytest.mark.parametrize("vertical", [False, True])
    def test_translation_preserves_chunk_local_cells(
        self, old_rotated, new_rotated, vertical
    ):
        # A 6 wide x 4 tall chunk rectangle under both placements.
        def placed(x, y, rotated, bin_index):
            w, h = (4, 6) if rotated else (6, 4)
            return Placement(
                bin_index=bin_index, x=x, y=y, rotated=rotated, width=w, height=h
            )

        old = placed(8, 16, old_rotated, 2)
        new = placed(32, 4, new_rotated, 5)
        if vertical:
            run = Run(
                subarray=2, vertical=True, fixed=old.x + 1, start=old.y,
                count=4, first_tuple=0, tuple_stride=1,
            )
        else:
            run = Run(
                subarray=2, vertical=False, fixed=old.y + 1, start=old.x,
                count=4, first_tuple=0, tuple_stride=1,
            )
        moved = translate_run(run, old, new)
        assert moved.subarray == new.bin_index
        assert moved.count == run.count
        assert moved.first_tuple == run.first_tuple
        assert moved.tuple_stride == run.tuple_stride
        old_locals = [
            chunk_local_of(old, r, c) for _s, r, c in run_device_cells(run)
        ]
        new_locals = [
            chunk_local_of(new, r, c) for _s, r, c in run_device_cells(moved)
        ]
        assert old_locals == new_locals

    def test_identity_translation(self):
        p = Placement(bin_index=1, x=0, y=0, rotated=False, width=8, height=8)
        run = Run(subarray=1, vertical=True, fixed=3, start=2, count=4,
                  first_tuple=7, tuple_stride=2)
        assert translate_run(run, p, p) == run


class TestFaultInjector:
    def rectangles(self):
        return [(0, 0, 0, 32, 16), (1, 8, 8, 16, 16)]

    def make_injector(self, db=None, tracker=None):
        db = db or make_protected_db()
        return db, FaultInjector(
            db.ecc, occupied_rectangles(db),
            geometry=db.memory.geometry, wear_tracker=tracker,
        )

    def test_requires_rectangles(self):
        db = make_protected_db()
        with pytest.raises(ConfigurationError):
            FaultInjector(db.ecc, [])

    def test_unknown_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            CampaignSpec(n_faults=1, mode="cosmic-rays")

    def test_campaign_is_deterministic(self):
        _db, injector_a = self.make_injector()
        _db, injector_b = self.make_injector()
        records_a = injector_a.run(CampaignSpec(n_faults=24, seed=11))
        records_b = injector_b.run(CampaignSpec(n_faults=24, seed=11))
        assert records_a == records_b

    def test_cells_distinct_and_inside_rectangles(self):
        db, injector = self.make_injector()
        records = injector.run(CampaignSpec(n_faults=40, seed=3))
        cells = [(r.subarray, r.row, r.col) for r in records]
        assert len(set(cells)) == len(cells) == 40
        rects = occupied_rectangles(db)
        for sub, row, col in cells:
            assert any(
                s == sub and x <= col < x + w and y <= row < y + h
                for s, x, y, w, h in rects
            )

    def test_double_fraction_extremes(self):
        _db, injector = self.make_injector()
        singles = injector.run(CampaignSpec(n_faults=10, double_fraction=0.0, seed=1))
        assert not any(r.double for r in singles)
        _db, injector = self.make_injector()
        doubles = injector.run(CampaignSpec(n_faults=10, double_fraction=1.0, seed=1))
        assert all(r.double for r in doubles)
        for record in doubles:
            assert len(set(record.bits)) == 2

    def test_hotline_targets_hot_lines(self):
        db = make_protected_db()
        rects = occupied_rectangles(db)
        sub, x, y, w, h = rects[0]
        coord = db.physmem.subarray_coord(sub)
        tracker = WearTracker()
        hot_row = y + 1
        for _ in range(50):
            tracker.record_flush(
                coord[0], coord[1], coord[2], coord[3], Orientation.ROW, hot_row
            )
        _db, injector = self.make_injector(db=db, tracker=tracker)
        records = injector.run(CampaignSpec(n_faults=4, mode="hotline", seed=5))
        assert all(r.subarray == sub and r.row == hot_row for r in records)

    def test_hotline_without_wear_falls_back_to_uniform(self):
        _db, injector = self.make_injector(tracker=None)
        records = injector.run(CampaignSpec(n_faults=6, mode="hotline", seed=5))
        assert len(records) == 6

    def test_burst_plants_consecutive_cells(self):
        _db, injector = self.make_injector()
        records = injector.run(
            CampaignSpec(n_faults=4, mode="burst", burst_span=4, seed=2)
        )
        rows = {(r.subarray, r.row) for r in records}
        assert len(rows) == 1
        cols = sorted(r.col for r in records)
        assert cols == list(range(cols[0], cols[0] + 4))


class TestScrubScheduler:
    def test_sweep_charges_memory_stats(self):
        db = make_protected_db()
        scrubber = ScrubScheduler(db.ecc, db.memory)
        report = scrubber.sweep()
        assert report.swept_subarrays >= 1
        assert report.scrub_reads > 0 and report.scrub_cycles > 0
        stats = db.memory.stats
        assert stats.scrub_reads == report.scrub_reads
        assert stats.scrub_cycles == report.scrub_cycles
        snap = stats.snapshot()
        assert snap["scrub_reads"] == report.scrub_reads

    def test_sweep_corrects_and_reports_deltas(self):
        db = make_protected_db()
        table = db.tables["t"]
        p = table.chunks[0].placement
        db.ecc.inject_fault(p.bin_index, p.y, p.x, bit=12)
        scrubber = ScrubScheduler(db.ecc, db.memory)
        first = scrubber.sweep()
        assert first.corrected == 1 and first.detected == 0
        second = scrubber.sweep()
        assert second.corrected == 0 and second.detected == 0

    def test_budget_stops_and_cursor_resumes(self):
        db = make_protected_db()
        subarrays = db.physmem.materialized_indexes()
        if len(subarrays) < 2:
            # Force a second materialized subarray for the budget test.
            db.physmem.subarray(subarrays[-1] + 1)
            subarrays = db.physmem.materialized_indexes()
        scrubber = ScrubScheduler(db.ecc, db.memory, cycle_budget=1)
        report = scrubber.sweep()
        assert not report.complete
        assert report.swept_subarrays < len(subarrays)
        seen = report.swept_subarrays
        for _ in range(len(subarrays) * 2):
            extra = scrubber.sweep()
            seen += extra.swept_subarrays
            if extra.complete:
                break
        assert seen >= len(subarrays)
        assert scrubber.total.swept_subarrays == seen

    def test_detected_cells_carry_subarray_ids(self):
        db = make_protected_db()
        p = db.tables["t"].chunks[0].placement
        db.ecc.inject_fault(p.bin_index, p.y + 1, p.x + 1, bit=3)
        db.ecc.inject_fault(p.bin_index, p.y + 1, p.x + 1, bit=55)
        scrubber = ScrubScheduler(db.ecc, db.memory)
        report = scrubber.sweep()
        assert (p.bin_index, p.y + 1, p.x + 1) in report.detected_cells


class TestRecovery:
    def pick_read_cell(self, db):
        """A device cell a full-table SUM query will actually read."""
        table = db.tables["t"]
        chunk = table.chunks[0]
        offset = table.field_offset("b")
        row, col = chunk.local_cell(0, offset)
        return table, chunk, chunk.device_cell(row, col)

    @pytest.mark.parametrize("system", ["RC-NVM", "DRAM"])
    def test_single_bit_fault_transparent(self, system):
        db = make_protected_db(system)
        expected = int(db.table("t").field_values("b").sum())
        _table, _chunk, (sub, row, col) = self.pick_read_cell(db)
        db.ecc.inject_fault(sub, row, col, bit=20)
        outcome = db.execute("SELECT SUM(b) FROM t", verify=True)
        assert outcome.result.value == expected
        assert db.degradation_events == []

    @pytest.mark.parametrize("system", ["RC-NVM", "DRAM"])
    def test_double_bit_fault_triggers_chunk_remap(self, system):
        db = make_protected_db(system)
        expected = int(db.table("t").field_values("b").sum())
        table, chunk, (sub, row, col) = self.pick_read_cell(db)
        old_placement = chunk.placement
        db.ecc.inject_fault(sub, row, col, bit=20)
        db.ecc.inject_fault(sub, row, col, bit=63)
        outcome = db.execute("SELECT SUM(b) FROM t", verify=True)
        assert outcome.result.value == expected
        assert len(db.degradation_events) == 1
        event = db.degradation_events[0]
        assert event.table == "t"
        assert event.cell == (sub, row, col)
        assert event.old_placement == old_placement
        assert chunk.placement == event.new_placement
        assert chunk.placement != old_placement
        assert db.allocator.retired == [old_placement]
        assert outcome.timing.degradation_events == [event]

    def test_remap_preserves_updates_made_through_ecc(self):
        db = make_protected_db()
        table = db.table("t")
        table.write_field(0, "b", 777_000)
        _table, chunk, (sub, row, col) = self.pick_read_cell(db)
        db.ecc.inject_fault(sub, row, col, bit=4)
        db.ecc.inject_fault(sub, row, col, bit=40)
        db.execute("SELECT SUM(b) FROM t", verify=True)
        assert len(db.degradation_events) == 1
        assert table.read_tuple(0)[1] == 777_000

    def test_recover_cell_outside_chunks_returns_none(self):
        db = make_protected_db()
        g = db.memory.geometry
        assert db.recover_cell(g.channels * g.ranks * g.banks * g.subarrays - 1,
                               0, 0) is None

    def test_scrub_driven_recovery_round_trip(self):
        db = make_protected_db()
        scrubber = db.scrubber
        table = db.tables["t"]
        p = table.chunks[0].placement
        cell = (p.bin_index, p.y + 2, p.x + 2)
        db.ecc.inject_fault(*cell, bit=7)
        db.ecc.inject_fault(*cell, bit=30)
        report = scrubber.sweep()
        assert cell in report.detected_cells
        event = db.recover_cell(*cell)
        assert event is not None and event.cell == cell
        resweep = scrubber.sweep()
        assert resweep.corrected == 0 and resweep.detected == 0

    def test_new_tables_are_protected_automatically(self):
        db = make_protected_db()
        db.create_table("t2", [("x", 8)])
        db.insert_many("t2", [(i,) for i in range(100)])
        table = db.tables["t2"]
        assert table.ecc is db.ecc
        assert table.chunks[0].backup is not None


class TestChunkPackedRoundTrip:
    @pytest.mark.parametrize("layout", ["row", "column"])
    @pytest.mark.parametrize("rows", [3, 64, 257])
    def test_chunk_packed_inverts_write(self, layout, rows):
        db = make_database("RC-NVM")
        db.create_table("t", [("a", 8), ("b", 8), ("c", 8)], layout=layout)
        data = simple_rows(rows, 3, seed=9)
        db.insert_many("t", data)
        db.enable_reliability()
        table = db.tables["t"]
        packed = [table.chunk_packed(chunk) for chunk in table.chunks]
        flat = [tuple(int(v) for v in row) for part in packed for row in part]
        assert flat == [tuple(db.tables["t"].schema.pack(r)) for r in data]


class TestRunFaults:
    def run_small(self, **kwargs):
        from repro.harness.reliability import run_faults

        params = dict(
            systems=("RC-NVM",), scale=0.02, small=True,
            fault_rate=0.01, seed=7,
        )
        params.update(kwargs)
        return run_faults(**params)

    def test_invariants_hold(self):
        outcome = self.run_small()[0]
        outcome.check()  # raises on any broken pipeline invariant
        assert outcome.injected == outcome.corrected + outcome.detected
        assert outcome.detected > 0  # recovery path actually exercised
        assert outcome.recovered == outcome.detected
        assert outcome.resweep_corrected == 0 and outcome.resweep_detected == 0
        assert outcome.scrub_cycles > 0 and outcome.scrub_reads > 0
        assert outcome.wear_imbalance > 0
        assert outcome.queries_verified == 4

    def test_deterministic_given_seed(self):
        first = self.run_small()[0]
        second = self.run_small()[0]
        assert first == second

    def test_all_double_campaign_recovers_everything(self):
        outcome = self.run_small(double_fraction=1.0)[0]
        assert outcome.corrected == 0
        assert outcome.detected == outcome.injected
        assert outcome.recovered == outcome.detected
