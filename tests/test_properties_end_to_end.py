"""End-to-end property tests: random data, random queries, every system.

The central correctness invariant of the whole stack: for any table
contents and any statement in our SQL subset, the executor's result on
any simulated system and layout equals the naive reference engine's.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from conftest import SMALL_CACHES, make_database

FIELDS = ["f1", "f2", "f3", "f4", "f5"]
OPS = [">", "<", ">=", "<=", "=", "!="]


@st.composite
def table_data(draw):
    n = draw(st.integers(1, 120))
    seed = draw(st.integers(0, 2**16))
    rng = np.random.default_rng(seed)
    # Small value range on purpose: makes equality predicates non-trivial.
    return rng.integers(0, 40, size=(n, len(FIELDS))).tolist()


@st.composite
def statements(draw):
    kind = draw(st.sampled_from(["project", "star", "agg", "update"]))
    predicates = []
    for _ in range(draw(st.integers(0, 2))):
        field = draw(st.sampled_from(FIELDS))
        op = draw(st.sampled_from(OPS))
        value = draw(st.integers(-5, 45))
        predicates.append(f"{field} {op} {value}")
    where = f" WHERE {' AND '.join(predicates)}" if predicates else ""
    if kind == "project":
        fields = draw(st.lists(st.sampled_from(FIELDS), min_size=1, max_size=3,
                               unique=True))
        return f"SELECT {', '.join(fields)} FROM t{where}"
    if kind == "star":
        return f"SELECT * FROM t{where}"
    if kind == "agg":
        func = draw(st.sampled_from(["SUM", "AVG", "COUNT"]))
        field = draw(st.sampled_from(FIELDS))
        return f"SELECT {func}({field}) FROM t{where}"
    field = draw(st.sampled_from(FIELDS))
    value = draw(st.integers(0, 100))
    return f"UPDATE t SET {field} = {value}{where}"


class TestExecutorEqualsReference:
    @pytest.mark.parametrize("system_name", ["RC-NVM", "DRAM", "GS-DRAM"])
    @given(rows=table_data(), sql=statements())
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_random_statements(self, system_name, rows, sql):
        db = make_database(system_name, verify=True)
        layout = "column" if db.memory.supports_column else "row"
        db.create_table("t", [(f, 8) for f in FIELDS], layout=layout)
        db.insert_many("t", [tuple(row) for row in rows])
        # verify=True raises if executor and reference disagree.
        outcome = db.execute(sql, simulate=False)
        assert outcome.result is not None

    @given(rows=table_data(), sql=statements())
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_row_layout_on_rcnvm_agrees_too(self, rows, sql):
        db = make_database("RC-NVM", verify=True)
        db.create_table("t", [(f, 8) for f in FIELDS], layout="row")
        db.insert_many("t", [tuple(row) for row in rows])
        db.execute(sql, simulate=False)


class TestTimingSanity:
    @given(rows=table_data())
    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_cycles_positive_and_deterministic(self, rows):
        db = make_database("RC-NVM", verify=False)
        db.create_table("t", [(f, 8) for f in FIELDS], layout="column")
        db.insert_many("t", [tuple(row) for row in rows])
        sql = "SELECT SUM(f2) FROM t WHERE f1 > 10"
        first = db.execute(sql).cycles
        second = db.execute(sql).cycles
        assert first == second > 0

    @given(rows=table_data())
    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    def test_memory_accesses_bounded_by_lines_touched(self, rows):
        db = make_database("RC-NVM", verify=False)
        db.create_table("t", [(f, 8) for f in FIELDS], layout="column")
        db.insert_many("t", [tuple(row) for row in rows])
        outcome = db.execute("SELECT f1, f3 FROM t")
        timing = outcome.timing
        assert timing.llc_misses <= timing.lines_touched
        assert timing.memory["reads"] >= timing.llc_misses
