"""Set-associative cache: LRU, eviction, pinning."""

import pytest

from repro.cache.cache import Cache
from repro.cache.line import line_key
from repro.core.addressing import Orientation
from repro.errors import ConfigurationError


def key(i, orientation=Orientation.ROW):
    return line_key(i * 64, orientation)


@pytest.fixture
def cache():
    # 4 sets x 2 ways.
    return Cache("test", size_bytes=8 * 64, ways=2, hit_latency=4)


class TestBasics:
    def test_miss_then_hit(self, cache):
        assert cache.lookup(key(0)) is None
        cache.install(key(0))
        assert cache.lookup(key(0)) is not None
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_probe_does_not_count(self, cache):
        cache.install(key(0))
        cache.probe(key(0))
        assert cache.stats.hits == 0 and cache.stats.misses == 0

    def test_orientation_distinguishes_lines(self, cache):
        cache.install(key(0, Orientation.ROW))
        assert cache.lookup(key(0, Orientation.COLUMN)) is None

    def test_install_existing_refreshes(self, cache):
        cache.install(key(0))
        line, victim = cache.install(key(0), dirty=True)
        assert victim is None
        assert line.dirty

    def test_invalidate(self, cache):
        cache.install(key(0))
        assert cache.invalidate(key(0)) is not None
        assert cache.invalidate(key(0)) is None
        assert not cache.contains(key(0))

    def test_occupancy(self, cache):
        for i in range(3):
            cache.install(key(i))
        assert cache.occupancy() == 3

    def test_clear(self, cache):
        cache.install(key(0))
        cache.clear()
        assert cache.occupancy() == 0


class TestLru:
    def test_lru_victim(self, cache):
        # Keys 0, 4, 8 map to the same set (4 sets).
        cache.install(key(0))
        cache.install(key(4))
        cache.lookup(key(0))  # refresh 0; 4 becomes LRU
        _line, victim = cache.install(key(8))
        assert victim.key == key(4)

    def test_eviction_counted(self, cache):
        cache.install(key(0))
        cache.install(key(4))
        cache.install(key(8))
        assert cache.stats.evictions == 1


class TestPinning:
    def test_pinned_skipped(self, cache):
        cache.install(key(0), pinned=True)
        cache.install(key(4))
        _line, victim = cache.install(key(8))
        assert victim.key == key(4)
        assert cache.stats.pin_skips >= 1

    def test_all_pinned_forces_unpin(self, cache):
        cache.install(key(0), pinned=True)
        cache.install(key(4), pinned=True)
        _line, victim = cache.install(key(8))
        assert victim is not None
        assert cache.stats.pin_overflows == 1

    def test_set_pinned(self, cache):
        cache.install(key(0))
        assert cache.set_pinned(key(0), True).pinned
        assert not cache.set_pinned(key(0), False).pinned

    def test_set_pinned_missing(self, cache):
        assert cache.set_pinned(key(0), True) is None


class TestValidation:
    def test_bad_size(self):
        with pytest.raises(ConfigurationError):
            Cache("bad", size_bytes=100, ways=2, hit_latency=1)

    def test_non_power_of_two_sets(self):
        with pytest.raises(ConfigurationError):
            Cache("bad", size_bytes=3 * 2 * 64, ways=2, hit_latency=1)
