"""Observability layer: span tracer, metrics registry, query profiling.

Covers the three contracts the layer makes:

* **zero cost when disabled** — with no tracer installed the span hook
  returns a shared stateless no-op, the instrumented code never computes
  metric values, and span count is O(1) per query, never O(accesses);
* **faithful when enabled** — the exported span tree's simulated totals
  equal the run result's (the acceptance check: root span cycles ==
  the MemoryStats-backed run cycles), and the Chrome-trace export is
  structurally valid Trace Event Format;
* **stats migration is invisible** — every ``INSTRUMENTS`` declaration
  mirrors its dataclass's fields exactly, so ``snapshot()`` keys are
  unchanged and registry reads track the live stats objects across
  ``reset_timing()``.
"""

import json

import pytest

from conftest import make_database, simple_rows
from repro.cache.stats import CacheStats, SynonymStats
from repro.memsim.stats import BankStats, LatencyHistogram, MemoryStats
from repro.obs import metrics as obs_metrics
from repro.obs import tracer as obs
from repro.obs.metrics import MetricsRegistry, bind_stats, registry_for_database


# -- tracer -------------------------------------------------------------------
class TestTracer:
    def test_disabled_returns_shared_null_span(self):
        assert obs.active() is None
        sp = obs.span("anything", attr=1)
        assert sp is obs.NULL_SPAN
        assert not sp.enabled
        with sp as inner:
            inner.set(cycles=123)  # must be a silent no-op

    def test_tracing_builds_a_nested_tree(self):
        with obs.tracing() as tracer:
            with obs.span("query", sql="SELECT 1") as root:
                assert root.enabled
                assert tracer.current is root
                with obs.span("plan"):
                    pass
                with obs.span("operator") as op:
                    op.set(accesses=7)
        assert obs.active() is None
        assert [r.name for r in tracer.roots] == ["query"]
        root = tracer.roots[0]
        assert [c.name for c in root.children] == ["plan", "operator"]
        assert root.children[1].metrics == {"accesses": 7}
        assert root.wall_seconds >= root.children[0].wall_seconds

    def test_tracing_restores_previous_tracer(self):
        with obs.tracing() as outer:
            with obs.tracing() as inner:
                assert obs.active() is inner
            assert obs.active() is outer
        assert obs.active() is None

    def test_install_uninstall(self):
        tracer = obs.install()
        try:
            assert obs.active() is tracer
            with obs.span("s"):
                pass
            assert tracer.roots[0].name == "s"
        finally:
            obs.uninstall()
        assert obs.active() is None

    def test_to_dict_schema(self):
        with obs.tracing() as tracer:
            with obs.span("query", system="RC-NVM") as sp:
                sp.set(cycles=10)
                with obs.span("plan"):
                    pass
        exported = tracer.roots[0].to_dict()
        assert set(exported) == {"name", "wall_ms", "attrs", "metrics", "children"}
        assert exported["name"] == "query"
        assert exported["attrs"] == {"system": "RC-NVM"}
        assert exported["metrics"] == {"cycles": 10}
        assert exported["wall_ms"] >= 0
        assert [c["name"] for c in exported["children"]] == ["plan"]
        json.dumps(exported)  # JSON-ready, no further conversion needed

    def test_walk_and_find(self):
        with obs.tracing() as tracer:
            with obs.span("a"):
                with obs.span("b"):
                    with obs.span("c"):
                        pass
        root = tracer.roots[0]
        assert [s.name for s in root.walk()] == ["a", "b", "c"]
        assert root.find("c").name == "c"
        assert root.find("missing") is None

    def test_chrome_trace_format(self):
        """Every event is a complete ("X") event with the Trace Event
        Format's required fields, child intervals nest inside parents."""
        with obs.tracing() as tracer:
            with obs.span("query"):
                with obs.span("machine.run"):
                    pass
            with obs.span("query"):
                pass
        trace = tracer.to_chrome_trace()
        assert set(trace) == {"traceEvents", "displayTimeUnit"}
        events = trace["traceEvents"]
        assert len(events) == 3
        for event in events:
            assert event["ph"] == "X"
            assert isinstance(event["name"], str)
            assert isinstance(event["ts"], (int, float)) and event["ts"] >= 0
            assert isinstance(event["dur"], (int, float)) and event["dur"] >= 0
            assert isinstance(event["pid"], int)
            assert isinstance(event["tid"], int)
        by_name = {e["name"]: e for e in events}
        parent = min((e for e in events if e["name"] == "query"),
                     key=lambda e: e["ts"])
        child = by_name["machine.run"]
        assert parent["ts"] <= child["ts"]
        assert child["ts"] + child["dur"] <= parent["ts"] + parent["dur"] + 1e-6
        json.dumps(trace)


# -- metrics registry ----------------------------------------------------------
class TestMetricsRegistry:
    def test_counter_increments_and_rejects_decrease(self):
        registry = MetricsRegistry()
        c = registry.counter("requests", {"system": "DRAM"})
        c.inc()
        c.inc(4)
        assert c.value == 5
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge_and_histogram(self):
        registry = MetricsRegistry()
        g = registry.gauge("depth")
        g.set(3)
        g.set(1)
        assert g.value == 1
        h = registry.histogram("latency")
        for v in (1, 2, 200):
            h.record(v)
        assert h.value == 3
        assert h.percentile(100) >= 200
        assert h.to_dict() == LatencyHistogram.to_dict(h.hist)

    def test_labels_are_order_insensitive(self):
        registry = MetricsRegistry()
        a = registry.counter("m", {"x": 1, "y": 2})
        b = registry.get("m", {"y": 2, "x": 1})
        assert a is b
        assert registry.get("m", {"x": 1}) is None

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("m")
        with pytest.raises(ValueError):
            registry.gauge("m")

    def test_source_backed_is_read_only(self):
        registry = MetricsRegistry()
        stats = MemoryStats(reads=9)
        c = registry.counter("memory.reads", source=lambda: stats.reads)
        assert c.value == 9
        with pytest.raises(TypeError):
            c.inc()

    def test_collect_and_top(self):
        registry = MetricsRegistry()
        registry.counter("big").inc(100)
        registry.counter("small").inc(2)
        registry.gauge("mid").set(50)
        registry.counter("zero")  # zero-valued: excluded from top()
        samples = registry.collect()
        assert [s.name for s in samples] == ["big", "mid", "small", "zero"]
        top = registry.top(2)
        assert [(s.name, s.value) for s in top] == [("big", 100), ("mid", 50)]

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("m", {"ch": 0}).inc(3)
        registry.histogram("h").record(5)
        snap = registry.snapshot()
        assert snap["m"] == {"ch=0": 3}
        assert snap["h"] == {"": {7: 1}}


# -- stats migration -----------------------------------------------------------
class TestInstrumentDeclarations:
    @pytest.mark.parametrize("cls", [MemoryStats, BankStats, CacheStats,
                                     SynonymStats])
    def test_instruments_mirror_dataclass_fields(self, cls):
        """The registry migration must cover every field and invent none,
        so the public snapshot() keys cannot drift."""
        import dataclasses

        field_names = {f.name for f in dataclasses.fields(cls)}
        assert set(cls.INSTRUMENTS) == field_names
        assert set(cls.INSTRUMENTS.values()) <= set(obs_metrics.KINDS)

    def test_memory_stats_snapshot_keys_unchanged(self):
        snap = MemoryStats().snapshot()
        for name in MemoryStats.INSTRUMENTS:
            assert name in snap
        # Derived values stay in the snapshot alongside the raw fields.
        for derived in ("accesses", "buffer_miss_rate", "average_latency",
                        "latency_p50"):
            assert derived in snap

    def test_bind_stats_reads_live_object_across_replacement(self):
        holder = {"stats": MemoryStats(reads=5)}
        registry = MetricsRegistry()
        bind_stats(registry, lambda: holder["stats"], "memory")
        counter = registry.get("memory.reads")
        assert counter.value == 5
        holder["stats"] = MemoryStats(reads=11)  # what reset() does
        assert counter.value == 11

    def test_registry_for_database_tracks_simulation(self):
        db = make_database("RC-NVM", verify=False)
        db.create_table("t", [("f1", 8), ("f2", 8)], layout="column")
        db.insert_many("t", simple_rows(64, fields=2))
        registry = registry_for_database(db)
        outcome = db.execute("SELECT SUM(f2) FROM t WHERE f1 > x",
                             params={"x": 10})
        stats = db.memory.stats
        reads = registry.get("memory.reads",
                             {"system": "RC-NVM", "channel": 0})
        assert reads.value == stats.reads > 0
        oriented = registry.get(
            "memory.oriented",
            {"system": "RC-NVM", "channel": 0, "orientation": "column"},
        )
        assert oriented.value == stats.col_oriented
        l1 = registry.get("cache.misses", {"system": "RC-NVM", "level": "L1"})
        assert l1.value == db.hierarchy.levels[0].stats.misses > 0
        hist = registry.get("memory.latency_hist",
                            {"system": "RC-NVM", "channel": 0})
        assert hist.value == stats.latency_hist.count
        assert hist.percentile(50) == stats.latency_p50
        # reset_timing() replaces the stats objects wholesale; the
        # registry must keep reading the live ones.
        db.reset_timing()
        assert reads.value == 0
        assert l1.value == 0
        assert outcome.timing.cycles > 0  # outcome itself is unaffected


# -- threading through the stack ----------------------------------------------
class TestQuerySpans:
    @pytest.fixture()
    def db(self):
        db = make_database("RC-NVM", verify=False)
        db.create_table("t", [("f1", 8), ("f2", 8)], layout="column")
        db.insert_many("t", simple_rows(128, fields=2))
        return db

    def test_untraced_execute_leaves_spans_none(self, db):
        outcome = db.execute("SELECT SUM(f2) FROM t WHERE f1 > x",
                             params={"x": 10})
        assert outcome.timing.spans is None

    def test_root_span_cycles_equal_run_cycles(self, db):
        """The acceptance check: the span tree's root cycle total equals
        the MemoryStats-backed run result's cycles."""
        with obs.tracing():
            outcome = db.execute("SELECT SUM(f2) FROM t WHERE f1 > x",
                                 params={"x": 10})
        timing = outcome.timing
        spans = timing.spans
        assert spans["name"] == "query"
        assert spans["metrics"]["cycles"] == timing.cycles
        assert spans["metrics"]["accesses"] == timing.accesses
        assert spans["metrics"]["memory_accesses"] == timing.memory["accesses"]
        assert spans["metrics"]["orientation_mix"] == {
            "row": timing.memory["row_oriented"],
            "column": timing.memory["col_oriented"],
            "gather": timing.memory["gathers"],
        }

    def test_span_tree_shape(self, db):
        with obs.tracing():
            outcome = db.execute("SELECT SUM(f2) FROM t WHERE f1 > x",
                                 params={"x": 10})
        spans = outcome.timing.spans
        names = [c["name"] for c in spans["children"]]
        assert names[0] == "plan"
        assert names[1].startswith("operator:")
        assert names[2] == "machine.run"
        machine = spans["children"][2]
        assert machine["metrics"]["cycles"] == outcome.timing.cycles
        assert [c["name"] for c in machine["children"]] == ["controller.drain"]

    def test_span_count_is_constant_per_query_not_per_access(self, db):
        """Zero per-access cost: a query touching hundreds of memory
        accesses still opens exactly query/plan/operator/machine.run/
        controller.drain — five spans."""
        with obs.tracing() as tracer:
            outcome = db.execute("SELECT * FROM t WHERE f1 > x",
                                 params={"x": 2})
        assert outcome.timing.memory["accesses"] > 20
        assert sum(1 for _ in tracer.roots[0].walk()) == 5

    def test_fuzz_span_invariants_pass_and_catch_tampering(self, db):
        from repro.fuzz.invariants import _check_spans

        with obs.tracing():
            outcome = db.execute("SELECT SUM(f2) FROM t WHERE f1 > x",
                                 params={"x": 10})
        timing = outcome.timing
        assert _check_spans(timing) == []
        timing.spans["metrics"]["cycles"] += 1
        problems = _check_spans(timing)
        assert problems and "cycles" in problems[0]
        timing.spans = None  # untraced runs are exempt
        assert _check_spans(timing) == []


# -- profiling harness ---------------------------------------------------------
class TestProfiling:
    @pytest.fixture(scope="class")
    def profile(self):
        from repro.harness.profiling import profile_query

        return profile_query(qid="q7", system="rcnvm", scale=0.05, small=True)

    def test_aliases_resolve(self, profile):
        assert profile.qid == "Q7"
        assert profile.system == "RC-NVM"

    def test_unknown_names_raise(self):
        from repro.harness.profiling import resolve_query, resolve_system

        with pytest.raises(ValueError):
            resolve_system("HBM")
        with pytest.raises(ValueError):
            resolve_query("q99")

    def test_profile_is_self_consistent(self, profile):
        from repro.harness.profiling import check_profile

        assert check_profile(profile) == []
        assert profile.spans["metrics"]["cycles"] == profile.outcome.timing.cycles

    def test_render_contains_tree_and_metrics(self, profile):
        from repro.harness.profiling import render_profile

        text = render_profile(profile)
        assert "Q7 on RC-NVM" in text
        assert "machine.run" in text and "controller.drain" in text
        assert "memory.total_latency_cycles" in text

    def test_to_dict_is_json_ready(self, profile):
        payload = json.loads(json.dumps(profile.to_dict()))
        assert payload["query"] == "Q7"
        assert payload["spans"]["name"] == "query"
        assert "memory.reads" in payload["metrics"]

    def test_cli_smoke(self, capsys):
        from repro.harness.cli import main

        assert main(["profile", "--smoke"]) == 0
        out = capsys.readouterr().out
        assert "machine.run" in out
        assert "accounting consistent" in out

    def test_cli_chrome_out(self, tmp_path, capsys):
        from repro.harness.cli import main

        path = tmp_path / "trace.json"
        assert main(["profile", "--query", "q1", "--small",
                     "--scale", "0.05", "--chrome-out", str(path)]) == 0
        trace = json.loads(path.read_text())
        assert trace["traceEvents"]
        assert all(e["ph"] == "X" for e in trace["traceEvents"])

    def test_cli_rejects_unknown_system(self, capsys):
        from repro.harness.cli import main

        assert main(["profile", "--system", "HBM"]) == 2
        assert "unknown system" in capsys.readouterr().err
