"""Harness: system factories, report formatting, figure plumbing."""

import pytest

from repro.errors import ConfigurationError
from repro.harness import figures, report, systems
from repro.harness.experiment import measure_query, run_sql_suite
from repro.workloads.queries import QUERIES


class TestSystems:
    def test_build_all(self):
        for name in systems.SYSTEM_NAMES:
            memory = systems.build_system(name, small=True)
            assert memory.name == name

    def test_unknown_system(self):
        with pytest.raises(ConfigurationError):
            systems.build_system("HBM", small=True)

    def test_table1_rows_mention_all_components(self):
        rows = dict(systems.table1_rows())
        for component in ("Processor", "L1 cache", "L3 cache", "DRAM", "RRAM", "RC-NVM"):
            assert component in rows


class TestReport:
    def test_format_table_aligns(self):
        text = report.format_table(("a", "long header"), [(1, 2.5), (333, 4.0)])
        lines = text.splitlines()
        assert len(lines) == 4
        assert len(set(len(line) for line in lines)) == 1

    def test_normalize(self):
        assert report.normalize([2, 4], 2) == [1.0, 2.0]

    def test_normalize_distinguishes_missing_from_zero_baseline(self):
        """A missing baseline is a caller bug; a measured-zero baseline
        makes the ratios NaN (they used to collapse to silent 0.0)."""
        import math

        with pytest.raises(ValueError):
            report.normalize([2], None)
        assert all(math.isnan(v) for v in report.normalize([2, 4], 0))

    def test_speedup(self):
        assert report.speedup(100, 50) == 2.0
        assert report.speedup(1, 0) == float("inf")

    def test_speedup_zero_over_zero_is_unity(self):
        """Regression: speedup(0, 0) returned inf (0/0 guarded wrong);
        two zero-cycle runs are equal, not infinitely faster."""
        assert report.speedup(0, 0) == 1.0

    def test_geometric_mean(self):
        assert report.geometric_mean([2, 8]) == pytest.approx(4.0)

    def test_geometric_mean_zero_propagates(self):
        """Figure 18-style regression: one system scoring 0 must drag the
        geomean to exactly 0.0.  The old version dropped zeros from both
        the product and the count, so (0, 2, 8) reported 4.0 — a wildly
        inflated suite-level speedup."""
        assert report.geometric_mean([0.0, 2.0, 8.0]) == 0.0
        assert report.geometric_mean([1.4, 0.0, 2.3, 1.1]) == 0.0

    def test_geometric_mean_rejects_empty_and_negative(self):
        with pytest.raises(ValueError):
            report.geometric_mean([])
        with pytest.raises(ValueError):
            report.geometric_mean([2.0, -1.0])


class TestCheckRegression:
    """check_regression must fail loudly, never raise, on bad baselines."""

    @staticmethod
    def _report(rate=1000, mismatches=0):
        return {
            "equivalence": {"mismatches": mismatches, "mismatched": []},
            "replay_after_batched": {"accesses_per_sec": rate},
        }

    def test_missing_baseline_file_is_a_failure_not_an_exception(self, tmp_path):
        from repro.harness.perfbench import check_regression

        failures = check_regression(self._report(), tmp_path / "absent.json")
        assert len(failures) == 1
        assert "could not be read" in failures[0]
        assert "regenerate" in failures[0]

    def test_invalid_json_baseline(self, tmp_path):
        from repro.harness.perfbench import check_regression

        path = tmp_path / "corrupt.json"
        path.write_text("{not json")
        failures = check_regression(self._report(), path)
        assert failures and "not valid JSON" in failures[0]

    def test_baseline_missing_keys(self, tmp_path):
        import json

        from repro.harness.perfbench import check_regression

        path = tmp_path / "empty.json"
        path.write_text(json.dumps({"meta": {}}))
        failures = check_regression(self._report(), path)
        assert failures and "replay_after_batched.accesses_per_sec" in failures[0]

    def test_baseline_unusable_rate(self, tmp_path):
        import json

        from repro.harness.perfbench import check_regression

        path = tmp_path / "zero.json"
        path.write_text(
            json.dumps({"replay_after_batched": {"accesses_per_sec": 0}})
        )
        failures = check_regression(self._report(), path)
        assert failures and "unusable" in failures[0]

    def test_good_baseline_passes_and_gates(self, tmp_path):
        import json

        from repro.harness.perfbench import check_regression

        path = tmp_path / "base.json"
        path.write_text(
            json.dumps({"replay_after_batched": {"accesses_per_sec": 1000}})
        )
        assert check_regression(self._report(rate=990), path) == []
        failures = check_regression(self._report(rate=100), path)
        assert failures and "regressed" in failures[0]

    def test_kernel_serving_and_rebind_gates(self, tmp_path):
        import json

        from repro.harness.perfbench import check_regression

        path = tmp_path / "base.json"
        path.write_text(json.dumps({
            "replay_after_batched": {"accesses_per_sec": 1000},
            "replay_after_kernel": {"accesses_per_sec": 4000},
            "rebind_microbench": {"max_avg_us_per_rebind": 100},
        }))
        good = {
            **self._report(),
            "replay_after_kernel": {"accesses_per_sec": 3900},
            "template_serving": {"hit_rate": 0.95},
            "rebind_microbench": {"avg_us_per_rebind": 60.0},
        }
        assert check_regression(good, path) == []
        bad = {
            **self._report(),
            "replay_after_kernel": {"accesses_per_sec": 1000},
            "template_serving": {"hit_rate": 0.5},
            "rebind_microbench": {"avg_us_per_rebind": 250.0},
        }
        failures = check_regression(bad, path)
        assert len(failures) == 3
        assert any("kernel replay regressed" in f for f in failures)
        assert any("hit rate" in f for f in failures)
        assert any("rebind regressed" in f for f in failures)

    def test_serving_fences(self, tmp_path):
        """A baseline that records serving fences gates fairness, the
        hit-rate delta vs global FIFO, and unexpected shedding."""
        import json

        from repro.harness.perfbench import check_regression

        path = tmp_path / "base.json"
        path.write_text(json.dumps({
            "replay_after_batched": {"accesses_per_sec": 1000},
            "serving": {"max_fairness": 3.0, "min_hit_rate_delta": -0.005},
        }))
        good = {
            **self._report(),
            "serving": {"fairness": 1.2, "hit_rate_delta": 0.01, "shed": 0},
        }
        assert check_regression(good, path) == []
        bad = {
            **self._report(),
            "serving": {"fairness": 9.0, "hit_rate_delta": -0.2, "shed": 4},
        }
        failures = check_regression(bad, path)
        assert len(failures) == 3
        assert any("fairness regressed" in f for f in failures)
        assert any("locality regressed" in f for f in failures)
        assert any("shed" in f for f in failures)

    def test_baseline_without_serving_fences_skips_serving_gate(self, tmp_path):
        import json

        from repro.harness.perfbench import check_regression

        path = tmp_path / "old.json"
        path.write_text(
            json.dumps({"replay_after_batched": {"accesses_per_sec": 1000}})
        )
        report = {
            **self._report(),
            "serving": {"fairness": 9.0, "hit_rate_delta": -0.2, "shed": 4},
        }
        assert check_regression(report, path) == []

    def test_pre_kernel_baseline_still_gates_batched_only(self, tmp_path):
        """Baselines committed before the kernel path existed must keep
        working — only the sections they record are gated."""
        import json

        from repro.harness.perfbench import check_regression

        path = tmp_path / "old.json"
        path.write_text(
            json.dumps({"replay_after_batched": {"accesses_per_sec": 1000}})
        )
        new_report = {
            **self._report(),
            "replay_after_kernel": {"accesses_per_sec": 1},
        }
        assert check_regression(new_report, path) == []


class TestStaticFigures:
    def test_table2_lists_all_queries(self):
        result = figures.table2()
        assert len(result.rows) == len(QUERIES)

    def test_figure4_columns(self):
        result = figures.figure4()
        rcdram = result.column("RC-DRAM over DRAM")
        rcnvm = result.column("RC-NVM over RRAM")
        assert all(d > n for d, n in zip(rcdram, rcnvm))

    def test_figure5_monotone(self):
        values = figures.figure5().column("Latency overhead")
        assert values == sorted(values)

    def test_render_contains_title(self):
        assert "Area overhead" in figures.figure4().render()


class TestSuitePlumbing:
    @pytest.fixture(scope="class")
    def tiny_suite(self):
        return run_sql_suite(
            systems=("RC-NVM", "DRAM"),
            qids=("Q1", "Q4"),
            scale=0.02,
            small=True,
            cache_config=dict(l1_kib=4, l2_kib=16, l3_kib=64),
            verify=True,
        )

    def test_measurements_shape(self, tiny_suite):
        assert set(tiny_suite) == {"Q1", "Q4"}
        assert set(tiny_suite["Q1"]) == {"RC-NVM", "DRAM"}

    def test_measurement_fields(self, tiny_suite):
        m = tiny_suite["Q1"]["RC-NVM"]
        assert m.cycles > 0 and m.llc_misses > 0
        assert 0 <= m.buffer_miss_rate <= 1
        assert m.row()[0] == "Q1"

    def test_figure18_from_measurements(self, tiny_suite):
        result = figures.figure18(tiny_suite, systems=("RC-NVM", "DRAM"))
        assert result.headers == ("query", "RC-NVM", "DRAM")
        assert len(result.rows) == 2

    def test_figure19_20_21(self, tiny_suite):
        f19 = figures.figure19(tiny_suite, systems=("RC-NVM", "DRAM"))
        f20 = figures.figure20(tiny_suite, systems=("RC-NVM", "DRAM"))
        f21 = figures.figure21(tiny_suite)
        assert len(f19.rows) == len(f20.rows) == len(f21.rows) == 2


class TestCli:
    def test_list(self, capsys):
        from repro.harness.cli import main

        assert main(["--list"]) == 0
        assert "fig18" in capsys.readouterr().out

    def test_unknown_experiment(self, capsys):
        from repro.harness.cli import main

        assert main(["nope"]) == 2

    def test_static_experiments(self, capsys):
        from repro.harness.cli import main

        assert main(["fig4", "table2"]) == 0
        out = capsys.readouterr().out
        assert "Figure 4" in out and "Table 2" in out

    def test_energy_populates_shared_measurement_cache(self, capsys, monkeypatch):
        """Regression: 'energy' used to leave ``_SQL_MEASUREMENTS`` empty,
        so a later SQL figure re-simulated the whole suite."""
        from repro.harness import cli

        monkeypatch.setattr(cli, "_SQL_MEASUREMENTS", [None])
        calls = []
        original = figures.run_figures_18_21

        def counting(**kwargs):
            calls.append(kwargs)
            kwargs["qids"] = ("Q1",)  # keep the test cheap
            return original(**kwargs)

        monkeypatch.setattr(figures, "run_figures_18_21", counting)
        assert cli.main(["energy", "fig18", "--small", "--scale", "0.02"]) == 0
        out = capsys.readouterr().out
        assert "Energy" in out and "Figure 18" in out
        assert len(calls) == 1  # fig18 reused the energy run's measurements
        # A separate invocation still reuses the in-process cache.
        assert cli.main(["fig19", "--small", "--scale", "0.02"]) == 0
        assert len(calls) == 1

    def test_faults_cli_renders_table(self, capsys, monkeypatch):
        from repro.harness import cli, reliability

        outcome = reliability.FaultsOutcome(
            system="RC-NVM", injected=4, singles=3, doubles=1, corrected=3,
            detected=1, recovered=1, scrub_reads=100, scrub_cycles=5000,
            resweep_corrected=0, resweep_detected=0, retired_cells=64,
            wear_imbalance=1.2, queries_verified=4,
        )
        seen = {}

        def fake_run_faults(**kwargs):
            seen.update(kwargs)
            return [outcome]

        monkeypatch.setattr(reliability, "run_faults", fake_run_faults)
        assert cli.main(
            ["faults", "--fault-rate", "0.01", "--seed", "11",
             "--fault-mode", "hotline"]
        ) == 0
        out = capsys.readouterr().out
        assert "Fault injection" in out and "RC-NVM" in out
        assert seen["seed"] == 11 and seen["mode"] == "hotline"
        assert seen["fault_rate"] == 0.01


class TestWritePathFences:
    @staticmethod
    def _report(**write_path):
        return {
            "equivalence": {"mismatches": 0, "mismatched": []},
            "replay_after_batched": {"accesses_per_sec": 1000},
            "write_path": write_path,
        }

    @staticmethod
    def _baseline(tmp_path, fences):
        import json

        path = tmp_path / "base.json"
        path.write_text(json.dumps({
            "replay_after_batched": {"accesses_per_sec": 1000},
            "write_path": fences,
        }))
        return path

    def test_write_path_fences_gate_both_directions(self, tmp_path):
        from repro.harness.perfbench import check_regression

        path = self._baseline(tmp_path, {
            "min_write_pulse_reduction": 1, "max_read_p99_ratio": 1.05,
        })
        good = self._report(write_pulse_reduction=15, read_p99_ratio=1.0)
        assert check_regression(good, path) == []
        bad = self._report(write_pulse_reduction=0, read_p99_ratio=1.4)
        failures = check_regression(bad, path)
        assert len(failures) == 2
        assert any("write coalescing regressed" in f for f in failures)
        assert any("hurt reads" in f for f in failures)

    def test_unmeasurable_p99_ratio_is_not_gated(self, tmp_path):
        # A workload with no reads reports ratio None; that is a workload
        # problem, not a latency regression.
        from repro.harness.perfbench import check_regression

        path = self._baseline(tmp_path, {"max_read_p99_ratio": 1.05})
        report = self._report(write_pulse_reduction=3, read_p99_ratio=None)
        assert check_regression(report, path) == []

    def test_baseline_without_write_path_fences_skips_the_gate(self, tmp_path):
        import json

        from repro.harness.perfbench import check_regression

        path = tmp_path / "old.json"
        path.write_text(
            json.dumps({"replay_after_batched": {"accesses_per_sec": 1000}})
        )
        report = self._report(write_pulse_reduction=-5, read_p99_ratio=9.0)
        assert check_regression(report, path) == []


class TestWearHarness:
    def test_workload_is_update_skewed_and_deterministic(self):
        from repro.harness.wear import build_workload

        statements = build_workload(rounds=4)
        updates = [s for s in statements if s[0].startswith("UPDATE")]
        assert len(updates) == len(statements) / 2  # one read per update
        assert statements == build_workload(rounds=4)
        # The sliding windows overlap round to round (coalescing needs
        # re-dirtied rows, not disjoint ranges).
        lows = sorted(params["z"] for sql, params, _hint in updates)
        assert any(b - a < 120 for a, b in zip(lows, lows[1:]))

    def test_hist_percentile_first_crossing(self):
        from repro.harness.wear import _hist_percentile

        hist = {7: 50, 63: 49, 1023: 1}
        assert _hist_percentile(hist, 50) == 7
        assert _hist_percentile(hist, 99) == 63
        assert _hist_percentile(hist, 100) == 1023
        assert _hist_percentile({}, 99) == 0

    def test_cli_dispatches_wear(self, monkeypatch):
        from repro.harness import cli, wear

        seen = {}

        def fake_main(argv):
            seen["argv"] = argv
            return 0

        monkeypatch.setattr(wear, "main", fake_main)
        assert cli.main(["wear", "--smoke"]) == 0
        assert seen["argv"] == ["--smoke"]

    def test_sched_flags_reach_sched_kwargs(self, monkeypatch):
        from repro.harness import cli

        seen = {}

        class FakeResult:
            def render(self):
                return "fake"

        def fake_fig22(**kwargs):
            seen.update(kwargs)
            return FakeResult()

        monkeypatch.setattr(cli.figures, "figure22", fake_fig22)
        argv = ["fig22", "--write-coalescing", "--read-around-write"]
        assert cli.main(argv) == 0
        assert seen["sched_kwargs"] == {
            "write_coalescing": True, "read_around_write": True,
        }
        seen.clear()
        # Without the flags the kwargs stay absent (not False), so the
        # controller defaults are untouched.
        assert cli.main(["fig22"]) == 0
        assert seen["sched_kwargs"] == {}
