"""Harness: system factories, report formatting, figure plumbing."""

import pytest

from repro.errors import ConfigurationError
from repro.harness import figures, report, systems
from repro.harness.experiment import measure_query, run_sql_suite
from repro.workloads.queries import QUERIES


class TestSystems:
    def test_build_all(self):
        for name in systems.SYSTEM_NAMES:
            memory = systems.build_system(name, small=True)
            assert memory.name == name

    def test_unknown_system(self):
        with pytest.raises(ConfigurationError):
            systems.build_system("HBM", small=True)

    def test_table1_rows_mention_all_components(self):
        rows = dict(systems.table1_rows())
        for component in ("Processor", "L1 cache", "L3 cache", "DRAM", "RRAM", "RC-NVM"):
            assert component in rows


class TestReport:
    def test_format_table_aligns(self):
        text = report.format_table(("a", "long header"), [(1, 2.5), (333, 4.0)])
        lines = text.splitlines()
        assert len(lines) == 4
        assert len(set(len(line) for line in lines)) == 1

    def test_normalize(self):
        assert report.normalize([2, 4], 2) == [1.0, 2.0]
        assert report.normalize([2], 0) == [0.0]

    def test_speedup(self):
        assert report.speedup(100, 50) == 2.0
        assert report.speedup(1, 0) == float("inf")

    def test_geometric_mean(self):
        assert report.geometric_mean([2, 8]) == pytest.approx(4.0)
        assert report.geometric_mean([]) == 0.0


class TestStaticFigures:
    def test_table2_lists_all_queries(self):
        result = figures.table2()
        assert len(result.rows) == len(QUERIES)

    def test_figure4_columns(self):
        result = figures.figure4()
        rcdram = result.column("RC-DRAM over DRAM")
        rcnvm = result.column("RC-NVM over RRAM")
        assert all(d > n for d, n in zip(rcdram, rcnvm))

    def test_figure5_monotone(self):
        values = figures.figure5().column("Latency overhead")
        assert values == sorted(values)

    def test_render_contains_title(self):
        assert "Area overhead" in figures.figure4().render()


class TestSuitePlumbing:
    @pytest.fixture(scope="class")
    def tiny_suite(self):
        return run_sql_suite(
            systems=("RC-NVM", "DRAM"),
            qids=("Q1", "Q4"),
            scale=0.02,
            small=True,
            cache_config=dict(l1_kib=4, l2_kib=16, l3_kib=64),
            verify=True,
        )

    def test_measurements_shape(self, tiny_suite):
        assert set(tiny_suite) == {"Q1", "Q4"}
        assert set(tiny_suite["Q1"]) == {"RC-NVM", "DRAM"}

    def test_measurement_fields(self, tiny_suite):
        m = tiny_suite["Q1"]["RC-NVM"]
        assert m.cycles > 0 and m.llc_misses > 0
        assert 0 <= m.buffer_miss_rate <= 1
        assert m.row()[0] == "Q1"

    def test_figure18_from_measurements(self, tiny_suite):
        result = figures.figure18(tiny_suite, systems=("RC-NVM", "DRAM"))
        assert result.headers == ("query", "RC-NVM", "DRAM")
        assert len(result.rows) == 2

    def test_figure19_20_21(self, tiny_suite):
        f19 = figures.figure19(tiny_suite, systems=("RC-NVM", "DRAM"))
        f20 = figures.figure20(tiny_suite, systems=("RC-NVM", "DRAM"))
        f21 = figures.figure21(tiny_suite)
        assert len(f19.rows) == len(f20.rows) == len(f21.rows) == 2


class TestCli:
    def test_list(self, capsys):
        from repro.harness.cli import main

        assert main(["--list"]) == 0
        assert "fig18" in capsys.readouterr().out

    def test_unknown_experiment(self, capsys):
        from repro.harness.cli import main

        assert main(["nope"]) == 2

    def test_static_experiments(self, capsys):
        from repro.harness.cli import main

        assert main(["fig4", "table2"]) == 0
        out = capsys.readouterr().out
        assert "Figure 4" in out and "Table 2" in out
