"""Property tests for the vectorized address-space conversions.

The scalar ``row_to_col_address``/``col_to_row_address`` pair and the
array-valued ``row_to_col_addresses``/``col_to_row_addresses`` pair run
off the same precomputed permutation tables; these tests pin down the
contract over random geometries: the conversions are mutually inverse,
the vectorized forms agree element-wise with the scalar forms, and the
batched ``decode_fields`` matches scalar ``decode``.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.addressing import AddressMapper, Orientation
from repro.geometry import Geometry


def _pow2(lo, hi):
    return st.integers(lo, hi).map(lambda exponent: 1 << exponent)


GEOMETRIES = st.builds(
    Geometry,
    channels=_pow2(0, 2),
    ranks=_pow2(0, 2),
    banks=_pow2(0, 3),
    subarrays=_pow2(0, 3),
    rows=_pow2(2, 10),
    cols=_pow2(2, 10),
)


@st.composite
def mapper_and_addresses(draw):
    geometry = draw(GEOMETRIES)
    mapper = AddressMapper(geometry)
    n = draw(st.integers(min_value=1, max_value=48))
    raw = draw(
        st.lists(
            st.integers(min_value=0, max_value=mapper._address_mask),
            min_size=n,
            max_size=n,
        )
    )
    return mapper, np.asarray(raw, dtype=np.int64)


@settings(deadline=None)
@given(mapper_and_addresses())
def test_conversions_are_mutually_inverse(case):
    mapper, addresses = case
    there = mapper.row_to_col_addresses(addresses)
    back = mapper.col_to_row_addresses(there)
    np.testing.assert_array_equal(back, addresses)
    there = mapper.col_to_row_addresses(addresses)
    back = mapper.row_to_col_addresses(there)
    np.testing.assert_array_equal(back, addresses)


@settings(deadline=None)
@given(mapper_and_addresses())
def test_vectorized_matches_scalar(case):
    mapper, addresses = case
    expected = [mapper.row_to_col_address(int(a)) for a in addresses]
    np.testing.assert_array_equal(mapper.row_to_col_addresses(addresses), expected)
    expected = [mapper.col_to_row_address(int(a)) for a in addresses]
    np.testing.assert_array_equal(mapper.col_to_row_addresses(addresses), expected)


@settings(deadline=None)
@given(mapper_and_addresses(), st.data())
def test_decode_fields_matches_scalar_decode(case, data):
    mapper, addresses = case
    orientations = np.asarray(
        data.draw(
            st.lists(
                st.sampled_from((int(Orientation.ROW), int(Orientation.COLUMN))),
                min_size=len(addresses),
                max_size=len(addresses),
            )
        )
    )
    ch, rk, bk, sa, row, col = mapper.decode_fields(addresses, orientations)
    for i, (address, orientation) in enumerate(zip(addresses, orientations)):
        coord = mapper.decode(int(address), Orientation(int(orientation)))
        assert (ch[i], rk[i], bk[i], sa[i], row[i], col[i]) == (
            coord.channel,
            coord.rank,
            coord.bank,
            coord.subarray,
            coord.row,
            coord.col,
        )
