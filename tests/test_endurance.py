"""NVM wear tracking: flush accounting and distribution metrics."""

import pytest

from repro.core.addressing import Coordinate, Orientation
from repro.imdb.physmem import PhysicalMemory
from repro.memsim.endurance import (
    WearLine,
    WearTracker,
    attach_wear_tracker,
    subarray_index_of,
)
from repro.memsim.system import make_small_rcnvm


class TestTracker:
    def test_empty(self):
        tracker = WearTracker()
        assert tracker.total_flushes == 0
        assert tracker.max_wear == 0
        assert tracker.imbalance() == 0.0

    def test_record_and_aggregate(self):
        tracker = WearTracker()
        for _ in range(3):
            tracker.record_flush(0, 0, 0, 0, Orientation.ROW, 5)
        tracker.record_flush(0, 0, 0, 0, Orientation.ROW, 9)
        assert tracker.total_flushes == 4
        assert tracker.lines_touched == 2
        assert tracker.max_wear == 3
        assert tracker.imbalance() == pytest.approx(3 / 2)
        (hot_line, hot_count), *_rest = tracker.hottest(1)
        assert hot_count == 3 and hot_line.index == 5

    def test_row_and_column_lines_distinct(self):
        tracker = WearTracker()
        tracker.record_flush(0, 0, 0, 0, Orientation.ROW, 5)
        tracker.record_flush(0, 0, 0, 0, Orientation.COLUMN, 5)
        assert tracker.lines_touched == 2


class TestAttachment:
    def test_dirty_flushes_are_recorded(self):
        memory = make_small_rcnvm()
        tracker = attach_wear_tracker(memory)
        # Write row 3, then conflict to row 4: the dirty buffer flushes.
        memory.access(Coordinate(0, 0, 0, 0, 3, 0), Orientation.ROW, True, 0)
        memory.access(Coordinate(0, 0, 0, 0, 4, 0), Orientation.ROW, False, 10_000)
        assert tracker.total_flushes == 1
        line = tracker.hottest(1)[0][0]
        assert line == WearLine(0, 0, 0, 0, Orientation.ROW, 3)

    def test_clean_traffic_no_wear(self):
        memory = make_small_rcnvm()
        tracker = attach_wear_tracker(memory)
        for row in range(8):
            memory.access(Coordinate(0, 0, 0, 0, row, 0), Orientation.ROW, False, 0)
        assert tracker.total_flushes == 0

    def test_flush_buffers_records_wear(self):
        memory = make_small_rcnvm()
        tracker = attach_wear_tracker(memory)
        memory.access(Coordinate(0, 0, 1, 1, 7, 0), Orientation.ROW, True, 0)
        memory.flush_buffers()
        assert tracker.total_flushes == 1
        line = tracker.hottest(1)[0][0]
        assert (line.bank, line.subarray, line.index) == (1, 1, 7)

    def test_column_buffer_wear(self):
        memory = make_small_rcnvm()
        tracker = attach_wear_tracker(memory)
        memory.access(Coordinate(0, 0, 0, 0, 0, 9), Orientation.COLUMN, True, 0)
        memory.flush_buffers()
        line = tracker.hottest(1)[0][0]
        assert line.kind is Orientation.COLUMN and line.index == 9

    def test_wear_identity_pins_physmem_coordinates(self):
        """The (rank, bank) split of ``attach_wear_tracker`` must stay the
        inverse of ``PhysicalMemory.subarray_coord`` — a divergence would
        silently aim the fault injector at the wrong physical cells."""
        memory = make_small_rcnvm()
        tracker = attach_wear_tracker(memory)
        physmem = PhysicalMemory(memory.geometry)
        g = memory.geometry
        now = 0
        for channel in range(g.channels):
            for rank in range(g.ranks):
                for bank in range(g.banks):
                    sub, row = 1 % g.subarrays, 3
                    memory.access(
                        Coordinate(channel, rank, bank, sub, row, 0),
                        Orientation.ROW, True, now,
                    )
                    now += 100_000
        memory.flush_buffers()
        assert tracker.lines_touched == g.channels * g.ranks * g.banks
        for line in tracker.counts:
            # The wear line round-trips through the flat subarray id back
            # to exactly the coordinates the request carried.
            flat = subarray_index_of(line, g)
            assert physmem.subarray_coord(flat) == (
                line.channel, line.rank, line.bank, line.subarray
            )
            assert (line.kind, line.index) == (Orientation.ROW, 3)

    def test_hot_line_imbalance_visible(self):
        memory = make_small_rcnvm()
        tracker = attach_wear_tracker(memory)
        # Hammer one row with writes; write each other row once.
        now = 0
        for i in range(10):
            memory.access(Coordinate(0, 0, 0, 0, 3, 0), Orientation.ROW, True, now)
            now += 10_000
            memory.access(Coordinate(0, 0, 0, 0, 4 + i, 0), Orientation.ROW, True, now)
            now += 10_000
        memory.flush_buffers()
        assert tracker.max_wear == 10
        assert tracker.imbalance() > 3
