"""Trace file round-tripping (the authors' RCNVMTrace artifact shape)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import isa
from repro.core.addressing import Coordinate, Orientation
from repro.cpu.trace import Access, Op
from repro.cpu.tracefile import (
    TraceFormatError,
    dump_access,
    load_trace,
    parse_line,
    save_trace,
)


def sample_trace():
    return [
        isa.load(0x1000, size=64, gap=2),
        isa.store(0x2000, size=8),
        isa.cload(0x3000, size=128, pin=True),
        isa.cstore(0x4000, size=8, barrier=True),
        isa.gather_load(0x50000, Coordinate(1, 2, 3, 4, 100, 200)),
        isa.unpin(0x3000, 128, Orientation.COLUMN),
        isa.unpin(0x6000, 64, Orientation.ROW),
    ]


def access_tuple(access):
    coord = access.coord
    return (
        access.op,
        access.address,
        access.size,
        access.gap,
        access.barrier,
        access.pin,
        access.orientation,
        None if coord is None else (coord.channel, coord.rank, coord.bank,
                                    coord.subarray, coord.row, coord.col),
    )


class TestRoundTrip:
    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "workload.trace"
        original = sample_trace()
        count = save_trace(path, original)
        assert count == len(original)
        loaded = list(load_trace(path))
        assert [access_tuple(a) for a in loaded] == [access_tuple(a) for a in original]

    def test_line_roundtrip_each_op(self):
        for access in sample_trace():
            parsed = parse_line(dump_access(access))
            assert access_tuple(parsed) == access_tuple(access)

    @given(
        op=st.sampled_from([Op.READ, Op.WRITE, Op.CREAD, Op.CWRITE]),
        address=st.integers(0, (1 << 40) - 1).map(lambda a: a * 8),
        size=st.integers(1, 8192),
        gap=st.integers(0, 1000),
        barrier=st.booleans(),
        pin=st.booleans(),
    )
    @settings(max_examples=150)
    def test_property_roundtrip(self, op, address, size, gap, barrier, pin):
        access = Access(op, address, size, gap, barrier=barrier, pin=pin)
        assert access_tuple(parse_line(dump_access(access))) == access_tuple(access)

    def test_replayed_trace_times_identically(self, tmp_path):
        from repro.cache import SynonymDirectory, make_hierarchy
        from repro.cpu import Machine
        from repro.memsim import make_small_rcnvm

        memory = make_small_rcnvm()
        mapper = memory.mapper
        trace = [
            isa.cload(mapper.encode_col(Coordinate(0, 0, 0, 0, r, 3)), size=64)
            for r in range(0, 128, 8)
        ]
        path = tmp_path / "scan.trace"
        save_trace(path, trace)

        def run(accesses):
            mem = make_small_rcnvm()
            hierarchy = make_hierarchy(
                synonym=SynonymDirectory(mem.mapper), l1_kib=4, l2_kib=16, l3_kib=64
            )
            return Machine(mem, hierarchy).run(accesses).cycles

        assert run(trace) == run(list(load_trace(path)))


class TestErrors:
    def test_missing_header(self, tmp_path):
        path = tmp_path / "bad.trace"
        path.write_text("R 0x0 64 1\n")
        with pytest.raises(TraceFormatError):
            list(load_trace(path))

    @pytest.mark.parametrize(
        "line",
        [
            "R 0x10",  # too few fields
            "X 0x10 64 1",  # unknown op
            "R zz 64 1",  # bad address
            "G 0x10 64 1",  # gather without coordinate
            "R 0x10 64 1 @1,2,3",  # short coordinate
            "R 0x10 64 1 QQ",  # unknown flags
        ],
    )
    def test_bad_lines(self, line):
        with pytest.raises(TraceFormatError):
            parse_line(line)

    def test_comments_and_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "commented.trace"
        path.write_text("# rcnvm-trace v1\n\n# comment\nR 0x40 64 1\n")
        assert len(list(load_trace(path))) == 1
