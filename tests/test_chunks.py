"""Chunk layouts (Figure 13 semantics), runs, rotation, slicing."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import LayoutError
from repro.imdb.binpack import Placement
from repro.imdb.chunks import Chunk, IntraLayout, slice_table


def make_chunk(layout, n=16, tw=2, width=8, height=8, rotated=False,
               origin=(0, 0), subarray=0):
    chunk = Chunk(
        first_tuple=0, n_tuples=n, tuple_words=tw, layout=layout,
        width=width, height=height,
    )
    placed_w, placed_h = (height, width) if rotated else (width, height)
    chunk.placement = Placement(
        bin_index=subarray, x=origin[1], y=origin[0], rotated=rotated,
        width=placed_w, height=placed_h,
    )
    return chunk


class TestRowLayout:
    """Figure 13(a): consecutive tuples advance along the row."""

    def test_first_tuples_share_row(self):
        chunk = make_chunk(IntraLayout.ROW)
        assert chunk.local_cell(0, 0) == (0, 0)
        assert chunk.local_cell(1, 0) == (0, 2)
        assert chunk.local_cell(3, 1) == (0, 7)

    def test_wraps_to_next_row(self):
        chunk = make_chunk(IntraLayout.ROW)
        assert chunk.local_cell(4, 0) == (1, 0)

    def test_used_rows(self):
        assert make_chunk(IntraLayout.ROW, n=9).used_rows() == 3
        assert make_chunk(IntraLayout.ROW, n=8).used_rows() == 2


class TestColumnLayout:
    """Figure 13(b): consecutive tuples stack vertically."""

    def test_tuples_stack_vertically(self):
        chunk = make_chunk(IntraLayout.COLUMN)
        assert chunk.local_cell(0, 0) == (0, 0)
        assert chunk.local_cell(1, 0) == (1, 0)
        assert chunk.local_cell(7, 1) == (7, 1)

    def test_next_group_after_height(self):
        chunk = make_chunk(IntraLayout.COLUMN)
        assert chunk.local_cell(8, 0) == (0, 2)

    def test_used_groups(self):
        assert make_chunk(IntraLayout.COLUMN, n=9).used_groups() == 2
        assert make_chunk(IntraLayout.COLUMN, n=16).used_groups() == 2


class TestValidation:
    def test_capacity_enforced(self):
        with pytest.raises(LayoutError):
            Chunk(0, 100, 2, IntraLayout.ROW, width=8, height=8)

    def test_width_multiple_of_tuple(self):
        with pytest.raises(LayoutError):
            Chunk(0, 4, 3, IntraLayout.ROW, width=8, height=8)

    def test_bad_tuple_index(self):
        chunk = make_chunk(IntraLayout.ROW)
        with pytest.raises(LayoutError):
            chunk.local_cell(16, 0)

    def test_bad_word(self):
        chunk = make_chunk(IntraLayout.ROW)
        with pytest.raises(LayoutError):
            chunk.local_cell(0, 2)

    def test_unplaced_device_cell(self):
        chunk = Chunk(0, 4, 2, IntraLayout.ROW, width=8, height=8)
        with pytest.raises(LayoutError):
            chunk.device_cell(0, 0)


class TestDeviceMapping:
    def test_origin_offset(self):
        chunk = make_chunk(IntraLayout.ROW, origin=(10, 20), subarray=3)
        sub, row, col = chunk.device_cell(2, 5)
        assert (sub, row, col) == (3, 12, 25)

    def test_rotation_swaps_axes(self):
        chunk = make_chunk(IntraLayout.ROW, rotated=True, origin=(10, 20))
        sub, row, col = chunk.device_cell(2, 5)
        assert (row, col) == (15, 22)


class TestFieldRuns:
    @pytest.mark.parametrize("layout", [IntraLayout.ROW, IntraLayout.COLUMN])
    def test_runs_cover_every_tuple_once(self, layout):
        chunk = make_chunk(layout, n=13)
        covered = []
        for run in chunk.field_runs(1):
            for j in range(run.count):
                covered.append(run.first_tuple + j * run.tuple_stride)
        assert sorted(covered) == list(range(13))

    @pytest.mark.parametrize("layout", [IntraLayout.ROW, IntraLayout.COLUMN])
    def test_runs_point_at_correct_cells(self, layout):
        chunk = make_chunk(layout, n=16)
        for run in chunk.field_runs(1):
            assert run.vertical  # unrotated: chunk-vertical = device-vertical
            for j in range(run.count):
                local = run.first_tuple + j * run.tuple_stride
                row, col = chunk.local_cell(local, 1)
                assert (row, col) == (run.start + j, run.fixed)

    def test_column_layout_runs_are_tuple_ordered(self):
        chunk = make_chunk(IntraLayout.COLUMN, n=16)
        runs = chunk.field_runs(0)
        assert [r.first_tuple for r in runs] == [0, 8]
        assert all(r.tuple_stride == 1 for r in runs)

    def test_row_layout_runs_stride_by_slots(self):
        chunk = make_chunk(IntraLayout.ROW, n=16)
        runs = chunk.field_runs(0)
        assert [r.first_tuple for r in runs] == [0, 1, 2, 3]
        assert all(r.tuple_stride == 4 for r in runs)

    def test_rotated_runs_become_horizontal(self):
        chunk = make_chunk(IntraLayout.COLUMN, rotated=True)
        for run in chunk.field_runs(0):
            assert not run.vertical


class TestTupleAndRowRuns:
    def test_tuple_cells_contiguous(self):
        chunk = make_chunk(IntraLayout.ROW)
        run = chunk.tuple_cells(5, 0, 2)
        assert not run.vertical and run.count == 2
        row, col = chunk.local_cell(5, 0)
        assert (run.fixed, run.start) == (row, col)

    def test_row_run_full_width(self):
        chunk = make_chunk(IntraLayout.ROW)
        run = chunk.row_run(3)
        assert (run.fixed, run.start, run.count) == (3, 0, 8)

    def test_col_run(self):
        chunk = make_chunk(IntraLayout.COLUMN)
        run = chunk.col_run(2)
        assert run.vertical and run.fixed == 2
        assert run.count == chunk.used_rows()

    def test_row_cells_row_layout(self):
        chunk = make_chunk(IntraLayout.ROW, n=10)
        cells = list(chunk.row_cells(2, 0))
        # Row 2 holds tuples 8, 9 only (10 tuples, 4 per row).
        assert [c[3] for c in cells] == [8, 9]

    def test_row_cells_column_layout(self):
        chunk = make_chunk(IntraLayout.COLUMN, n=16)
        cells = list(chunk.row_cells(3, 0))
        assert [c[3] for c in cells] == [3, 11]


class TestSliceTable:
    def test_single_small_chunk(self):
        shapes = slice_table(10, 2, IntraLayout.ROW, subarray_rows=64, subarray_cols=64)
        assert len(shapes) == 1
        first, count, width, height = shapes[0]
        assert (first, count) == (0, 10)

    def test_multiple_chunks(self):
        shapes = slice_table(5000, 2, IntraLayout.ROW, subarray_rows=32, subarray_cols=32)
        per_chunk = (32 // 2) * 32
        assert len(shapes) == -(-5000 // per_chunk)
        assert sum(s[1] for s in shapes) == 5000

    def test_column_layout_dimensions(self):
        shapes = slice_table(100, 4, IntraLayout.COLUMN, subarray_rows=64, subarray_cols=64)
        first, count, width, height = shapes[0]
        assert height == 64
        assert width == 2 * 4  # ceil(100/64)=2 groups

    def test_tuple_too_wide(self):
        with pytest.raises(LayoutError):
            slice_table(10, 100, IntraLayout.ROW, subarray_rows=64, subarray_cols=64)

    @given(
        n=st.integers(1, 3000),
        tw=st.integers(1, 8),
        layout=st.sampled_from([IntraLayout.ROW, IntraLayout.COLUMN]),
    )
    @settings(max_examples=80, deadline=None)
    def test_shapes_fit_and_cover(self, n, tw, layout):
        shapes = slice_table(n, tw, layout, subarray_rows=32, subarray_cols=32)
        assert sum(s[1] for s in shapes) == n
        cursor = 0
        for first, count, width, height in shapes:
            assert first == cursor
            cursor += count
            assert width <= 32 and height <= 32
            assert width % tw == 0
            chunk = Chunk(first, count, tw, layout, width, height)  # capacity check
            assert chunk.n_tuples == count
