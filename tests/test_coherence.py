"""MESI directory protocol: states, transitions, invariants."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cache.cache import Cache
from repro.cache.coherence import Mesi, MesiDirectory
from repro.cache.line import line_key
from repro.cache.synonym import SynonymDirectory
from repro.core.addressing import AddressMapper, Coordinate, Orientation
from repro.geometry import SMALL_RCNVM_GEOMETRY


def key(i, orientation=Orientation.ROW):
    return line_key(i * 64, orientation)


def make_directory(cores=2, synonym=None):
    privates = [Cache(f"L1-{c}", 4 * 64, 2, 4) for c in range(cores)]
    llc = Cache("LLC", 64 * 64, 4, 38)
    return MesiDirectory(privates, llc, synonym=synonym)


class TestStates:
    def test_first_read_is_exclusive(self):
        directory = make_directory()
        hit, llc_hit, _extra, _wb = directory.read(0, key(1))
        assert not hit and not llc_hit
        assert directory.state_of(0, key(1)) is Mesi.EXCLUSIVE

    def test_second_reader_shares(self):
        directory = make_directory()
        directory.read(0, key(1))
        directory.read(1, key(1))
        assert directory.state_of(0, key(1)) is Mesi.SHARED
        assert directory.state_of(1, key(1)) is Mesi.SHARED

    def test_write_is_modified(self):
        directory = make_directory()
        directory.write(0, key(1))
        assert directory.state_of(0, key(1)) is Mesi.MODIFIED

    def test_exclusive_write_hit_is_silent_upgrade(self):
        directory = make_directory()
        directory.read(0, key(1))
        _hit, _llc, extra, _wb = directory.write(0, key(1))
        assert directory.state_of(0, key(1)) is Mesi.MODIFIED
        assert directory.stats.invalidations_sent == 0

    def test_write_invalidates_sharers(self):
        directory = make_directory(cores=3)
        for core in range(3):
            directory.read(core, key(1))
        directory.write(0, key(1))
        assert directory.state_of(0, key(1)) is Mesi.MODIFIED
        assert directory.state_of(1, key(1)) is None
        assert directory.state_of(2, key(1)) is None
        assert directory.stats.invalidations_sent == 2

    def test_remote_read_downgrades_owner(self):
        directory = make_directory()
        directory.write(0, key(1))
        directory.read(1, key(1))
        assert directory.state_of(0, key(1)) is Mesi.SHARED
        assert directory.state_of(1, key(1)) is Mesi.SHARED
        assert directory.stats.downgrades == 1
        assert directory.stats.writebacks_recalled == 1
        # Dirty data was pulled into the LLC.
        assert directory.llc.probe(key(1)).dirty

    def test_private_hit_costs_nothing_extra(self):
        directory = make_directory()
        directory.read(0, key(1))
        hit, _llc, extra, _wb = directory.read(0, key(1))
        assert hit and extra == 0


class TestInvariants:
    def test_single_writer(self):
        directory = make_directory()
        directory.write(0, key(1))
        directory.write(1, key(1))
        directory.check_invariants(key(1))
        assert directory.state_of(0, key(1)) is None
        assert directory.state_of(1, key(1)) is Mesi.MODIFIED

    @given(
        ops=st.lists(
            st.tuples(
                st.integers(0, 2),  # core
                st.integers(0, 5),  # line
                st.booleans(),  # write?
            ),
            min_size=1,
            max_size=60,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_random_traffic_keeps_invariants(self, ops):
        directory = make_directory(cores=3)
        for core, line, is_write in ops:
            if is_write:
                directory.write(core, key(line))
            else:
                directory.read(core, key(line))
            directory.check_invariants(key(line))

    def test_llc_eviction_recalls_private_copies(self):
        # Private cache big enough that its copy outlives the LLC's.
        privates = [Cache("L1-0", 32 * 64, 8, 4)]
        llc = Cache("LLC", 64 * 64, 4, 38)
        directory = MesiDirectory(privates, llc)
        set_count = llc.num_sets
        keys = [key(i * set_count) for i in range(llc.ways + 1)]
        for k in keys:
            directory.read(0, k)
        victim = keys[0]
        assert llc.probe(victim) is None
        assert directory.state_of(0, victim) is None
        directory.check_invariants(victim)
        assert directory.stats.llc_recalls >= 1

    def test_dirty_llc_eviction_writes_back(self):
        directory = make_directory()
        llc = directory.llc
        set_count = llc.num_sets
        keys = [key(i * set_count) for i in range(llc.ways + 1)]
        writebacks = []
        directory.write(0, keys[0])
        for k in keys[1:]:
            _h, _l, _e, wb = directory.read(0, k)
            writebacks.extend(wb)
        assert keys[0] in writebacks


class TestSynonymComposition:
    def test_crossing_resolved_before_coherence(self):
        mapper = AddressMapper(SMALL_RCNVM_GEOMETRY)
        synonym = SynonymDirectory(mapper)
        directory = make_directory(cores=2, synonym=synonym)
        col_key = line_key(
            mapper.encode_col(Coordinate(0, 0, 0, 0, 8, 16)), Orientation.COLUMN
        )
        row_key = line_key(
            mapper.encode_row(Coordinate(0, 0, 0, 0, 10, 16)), Orientation.ROW
        )
        directory.read(0, col_key)
        directory.read(1, row_key)
        assert directory.llc.probe(row_key).has_crossing(0)
        assert synonym.stats.crossing_copies == 1
        # A write to the crossed word updates the duplicate.
        _h, _l, extra, _wb = directory.write(1, row_key, word_mask=0b1)
        assert synonym.stats.write_updates == 1

    def test_no_synonym_costs_without_directory(self):
        directory = make_directory(cores=2, synonym=None)
        directory.read(0, key(1))
        directory.write(1, key(1))
        # Plain MESI still works; no synonym stats exist.
        assert directory.synonym is None
