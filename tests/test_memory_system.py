"""MemorySystem facade: factories, capabilities, routing, statistics."""

import pytest

from repro.core.addressing import Coordinate, Orientation
from repro.errors import CapabilityError
from repro.geometry import DRAM_GEOMETRY, RCNVM_GEOMETRY, SMALL_RCNVM_GEOMETRY
from repro.memsim.system import (
    make_dram,
    make_gsdram,
    make_rcnvm,
    make_rram,
    make_small_dram,
    make_small_rcnvm,
)


class TestFactories:
    def test_dram(self):
        memory = make_dram()
        assert memory.name == "DRAM"
        assert not memory.supports_column and not memory.supports_gather
        assert memory.geometry == DRAM_GEOMETRY

    def test_rram(self):
        memory = make_rram()
        assert not memory.supports_column
        assert memory.geometry == RCNVM_GEOMETRY

    def test_rcnvm(self):
        memory = make_rcnvm()
        assert memory.supports_column and not memory.supports_gather

    def test_gsdram(self):
        memory = make_gsdram()
        assert memory.supports_gather and not memory.supports_column

    def test_small_variants(self):
        assert make_small_rcnvm().geometry == SMALL_RCNVM_GEOMETRY
        assert make_small_dram().geometry.total_bytes == SMALL_RCNVM_GEOMETRY.total_bytes

    def test_controllers_per_channel(self):
        memory = make_small_rcnvm()
        assert len(memory.controllers) == memory.geometry.channels


class TestCapabilities:
    def test_column_rejected_on_dram(self):
        memory = make_small_dram()
        coord = Coordinate(0, 0, 0, 0, 0, 0)
        with pytest.raises(CapabilityError):
            memory.request_for_coord(coord, Orientation.COLUMN, False, 0)

    def test_gather_rejected_on_rcnvm(self):
        memory = make_small_rcnvm()
        coord = Coordinate(0, 0, 0, 0, 0, 0)
        with pytest.raises(CapabilityError):
            memory.request_for_coord(coord, Orientation.GATHER, False, 0)

    def test_column_accepted_on_rcnvm(self):
        memory = make_small_rcnvm()
        coord = Coordinate(0, 0, 0, 0, 0, 0)
        req = memory.request_for_coord(coord, Orientation.COLUMN, False, 0)
        assert memory.completion_of(req) > 0


class TestRouting:
    def test_requests_route_by_channel(self):
        memory = make_small_rcnvm()
        c0 = Coordinate(0, 0, 0, 0, 0, 0)
        c1 = Coordinate(1, 0, 0, 0, 0, 0)
        memory.request_for_coord(c0, Orientation.ROW, False, 0)
        memory.request_for_coord(c1, Orientation.ROW, False, 0)
        assert len(memory.controllers[0].pending) == 1
        assert len(memory.controllers[1].pending) == 1

    def test_request_for_line_decodes_column_space(self):
        memory = make_small_rcnvm()
        coord = Coordinate(0, 0, 1, 1, 32, 5)
        address = memory.mapper.encode_col(coord)
        req = memory.request_for_line(address, Orientation.COLUMN, False, 0)
        assert (req.bank, req.subarray, req.row, req.col) == (1, 1, 32, 5)
        assert req.buffer_kind is Orientation.COLUMN
        assert req.buffer_index == 5

    def test_access_convenience(self):
        memory = make_small_rcnvm()
        completion = memory.access(Coordinate(0, 0, 0, 0, 3, 3), Orientation.ROW, False, 0)
        assert completion > 0


class TestStats:
    def test_stats_merge_channels(self):
        memory = make_small_rcnvm()
        memory.access(Coordinate(0, 0, 0, 0, 0, 0), Orientation.ROW, False, 0)
        memory.access(Coordinate(1, 0, 0, 0, 0, 0), Orientation.ROW, False, 0)
        assert memory.stats.reads == 2

    def test_reset_clears(self):
        memory = make_small_rcnvm()
        memory.access(Coordinate(0, 0, 0, 0, 0, 0), Orientation.ROW, False, 0)
        memory.reset()
        assert memory.stats.accesses == 0

    def test_drain_returns_last_completion(self):
        memory = make_small_rcnvm()
        req = memory.request_for_coord(Coordinate(0, 0, 0, 0, 0, 0), Orientation.ROW, False, 0)
        last = memory.drain()
        assert last >= req.completion

    def test_snapshot_has_derived_fields(self):
        memory = make_small_rcnvm()
        memory.access(Coordinate(0, 0, 0, 0, 0, 0), Orientation.ROW, False, 0)
        snap = memory.stats.snapshot()
        assert snap["accesses"] == 1
        assert "buffer_miss_rate" in snap and "average_latency" in snap


#: The full snapshot contract.  Downstream consumers (energy model, figure
#: tables, benchmark ablations) index these keys by name, so a rename must
#: fail here first, loudly.
SNAPSHOT_GOLDEN_KEYS = frozenset({
    # raw counters
    "reads", "writes", "buffer_hits", "buffer_empty_misses",
    "buffer_conflicts", "orientation_switches", "dirty_flushes",
    "activations", "buffer_closes", "bus_busy_cycles",
    "total_latency_cycles", "row_oriented", "col_oriented", "gathers",
    # write-asymmetry accounting (coalescing + read-around-write)
    "write_pulses", "writes_coalesced", "read_around_writes",
    "read_latency_hist",
    # scheduler telemetry
    "write_drain_episodes", "starvation_cap_hits", "max_bypass",
    "queue_occupancy_sum", "queue_occupancy_samples",
    "max_queue_occupancy", "max_bank_queue_occupancy", "latency_hist",
    # fair-share arbitration (multi-tenant serving, repro.serving)
    "cross_stream_bypasses", "stream_rotations", "opportunistic_stream_hits",
    # reliability (background scrub traffic, repro.reliability.scrub)
    "scrub_reads", "scrub_cycles",
    # durability (WAL appends + persistence barriers, repro.durability)
    "wal_records", "wal_cells", "persist_barriers", "persist_flush_lines",
    # hybrid tier (DRAM-fronted RC-NVM, repro.memsim.tiering)
    "tier_dram_accesses", "tier_nvm_accesses",
    "tier_dram_hits", "tier_nvm_hits",
    "chunks_promoted", "chunks_demoted",
    "migration_cells", "migration_cycles",
    # derived
    "accesses", "buffer_miss_rate", "average_latency",
    "avg_queue_occupancy", "latency_p50", "latency_p95", "latency_p99",
    "read_latency_p50", "read_latency_p99",
})


class TestSnapshotGolden:
    def test_snapshot_keys_are_exactly_the_golden_set(self):
        memory = make_small_rcnvm()
        memory.access(Coordinate(0, 0, 0, 0, 0, 0), Orientation.ROW, False, 0)
        assert set(memory.stats.snapshot()) == SNAPSHOT_GOLDEN_KEYS

    def test_empty_snapshot_has_same_keys(self):
        assert set(make_small_rcnvm().stats.snapshot()) == SNAPSHOT_GOLDEN_KEYS

    def test_histogram_fields_are_consistent(self):
        memory = make_small_rcnvm()
        for i in range(8):
            memory.access(
                Coordinate(0, 0, 0, 0, i, 0), Orientation.ROW, False, i * 10
            )
        snap = memory.stats.snapshot()
        assert isinstance(snap["latency_hist"], dict)
        assert sum(snap["latency_hist"].values()) == snap["accesses"] == 8
        assert 0 < snap["latency_p50"] <= snap["latency_p95"] <= snap["latency_p99"]

    def test_histogram_merges_across_channels(self):
        memory = make_small_rcnvm()
        memory.access(Coordinate(0, 0, 0, 0, 0, 0), Orientation.ROW, False, 0)
        memory.access(Coordinate(1, 0, 0, 0, 0, 0), Orientation.ROW, False, 0)
        assert memory.stats.latency_hist.count == 2
