"""Cache hierarchy: promotion, inclusivity, write-back, synonym driving."""

import pytest

from repro.cache.cache import Cache
from repro.cache.hierarchy import MISS, CacheHierarchy
from repro.cache.line import line_key
from repro.cache.synonym import SynonymDirectory
from repro.core.addressing import AddressMapper, Coordinate, Orientation
from repro.geometry import SMALL_RCNVM_GEOMETRY


def small_hierarchy(synonym=None):
    return CacheHierarchy(
        [
            Cache("L1", 4 * 64, 2, hit_latency=4),
            Cache("L2", 16 * 64, 2, hit_latency=12),
            Cache("L3", 64 * 64, 4, hit_latency=38),
        ],
        synonym=synonym,
    )


def key(i, orientation=Orientation.ROW):
    return line_key(i * 64, orientation)


class TestLookupAndFill:
    def test_cold_miss(self):
        hierarchy = small_hierarchy()
        level, extra = hierarchy.lookup(key(0), False)
        assert level == MISS and extra == 0

    def test_fill_installs_everywhere(self):
        hierarchy = small_hierarchy()
        hierarchy.fill(key(0), False)
        for cache in hierarchy.levels:
            assert cache.contains(key(0))

    def test_hit_after_fill_is_l1(self):
        hierarchy = small_hierarchy()
        hierarchy.fill(key(0), False)
        level, _ = hierarchy.lookup(key(0), False)
        assert level == 0

    def test_promotion_from_l3(self):
        hierarchy = small_hierarchy()
        hierarchy.fill(key(0), False)
        hierarchy.levels[0].invalidate(key(0))
        hierarchy.levels[1].invalidate(key(0))
        level, _ = hierarchy.lookup(key(0), False)
        assert level == 2
        assert hierarchy.levels[0].contains(key(0))

    def test_write_dirties_l1(self):
        hierarchy = small_hierarchy()
        hierarchy.fill(key(0), True)
        assert hierarchy.levels[0].probe(key(0)).dirty


class TestEvictionAndWriteback:
    def test_llc_eviction_back_invalidates(self):
        hierarchy = small_hierarchy()
        llc = hierarchy.llc
        # Fill enough same-set lines to force an LLC eviction.
        set_count = llc.num_sets
        keys = [key(i * set_count) for i in range(llc.ways + 1)]
        for k in keys:
            hierarchy.fill(k, False)
        victim = keys[0]
        assert not llc.contains(victim)
        for cache in hierarchy.levels[:-1]:
            assert not cache.contains(victim)

    def test_dirty_eviction_queues_writeback(self):
        hierarchy = small_hierarchy()
        llc = hierarchy.llc
        set_count = llc.num_sets
        keys = [key(i * set_count) for i in range(llc.ways + 1)]
        hierarchy.fill(keys[0], True)  # dirty in L1
        for k in keys[1:]:
            hierarchy.fill(k, False)
        writebacks = hierarchy.drain_writebacks()
        assert keys[0] in writebacks

    def test_clean_eviction_no_writeback(self):
        hierarchy = small_hierarchy()
        llc = hierarchy.llc
        set_count = llc.num_sets
        for i in range(llc.ways + 1):
            hierarchy.fill(key(i * set_count), False)
        assert hierarchy.drain_writebacks() == []

    def test_flush_returns_dirty_keys(self):
        hierarchy = small_hierarchy()
        hierarchy.fill(key(0), True)
        hierarchy.fill(key(1), False)
        dirty = hierarchy.flush()
        assert dirty == [key(0)]
        assert all(cache.occupancy() == 0 for cache in hierarchy.levels)


class TestPinning:
    def test_pin_and_unpin(self):
        hierarchy = small_hierarchy()
        hierarchy.fill(key(0), False, pin=True)
        assert hierarchy.llc.probe(key(0)).pinned
        assert hierarchy.unpin(key(0))
        assert not hierarchy.llc.probe(key(0)).pinned

    def test_unpin_missing_returns_false(self):
        hierarchy = small_hierarchy()
        assert not hierarchy.unpin(key(0))

    def test_pinned_survives_pressure(self):
        hierarchy = small_hierarchy()
        llc = hierarchy.llc
        set_count = llc.num_sets
        pinned_key = key(0)
        hierarchy.fill(pinned_key, False, pin=True)
        for i in range(1, llc.ways + 2):
            hierarchy.fill(key(i * set_count), False)
        assert llc.contains(pinned_key)


class TestSynonymIntegration:
    @pytest.fixture
    def mapper(self):
        return AddressMapper(SMALL_RCNVM_GEOMETRY)

    def row_key(self, mapper, row, col):
        return line_key(
            mapper.encode_row(Coordinate(0, 0, 0, 0, row, col)), Orientation.ROW
        )

    def col_key(self, mapper, row, col):
        return line_key(
            mapper.encode_col(Coordinate(0, 0, 0, 0, row, col)), Orientation.COLUMN
        )

    def test_crossing_bits_set_on_fill(self, mapper):
        synonym = SynonymDirectory(mapper)
        hierarchy = small_hierarchy(synonym)
        col = self.col_key(mapper, row=8, col=16)
        row = self.row_key(mapper, row=10, col=16)
        hierarchy.fill(col, False)
        extra = hierarchy.fill(row, False)
        assert extra > 0
        row_line = hierarchy.llc.probe(row)
        col_line = hierarchy.llc.probe(col)
        # The row line's word 0 (col 16) crosses the column line's word 2
        # (row 10 within rows 8..15).
        assert row_line.has_crossing(0)
        assert col_line.has_crossing(2)
        assert synonym.stats.crossing_copies == 1

    def test_no_check_without_opposite_lines(self, mapper):
        synonym = SynonymDirectory(mapper)
        hierarchy = small_hierarchy(synonym)
        hierarchy.fill(self.row_key(mapper, 0, 0), False)
        hierarchy.fill(self.row_key(mapper, 1, 0), False)
        assert synonym.stats.crossing_checks == 0

    def test_write_updates_duplicate(self, mapper):
        synonym = SynonymDirectory(mapper)
        hierarchy = small_hierarchy(synonym)
        col = self.col_key(mapper, row=8, col=16)
        row = self.row_key(mapper, row=10, col=16)
        hierarchy.fill(col, False)
        hierarchy.fill(row, False)
        # Write the crossed word (word 0 of the row line).
        _level, extra = hierarchy.lookup(row, True, word_mask=0b1)
        assert extra == synonym.WRITE_UPDATE_COST
        assert synonym.stats.write_updates == 1

    def test_write_to_uncrossed_word_is_free(self, mapper):
        synonym = SynonymDirectory(mapper)
        hierarchy = small_hierarchy(synonym)
        col = self.col_key(mapper, row=8, col=16)
        row = self.row_key(mapper, row=10, col=16)
        hierarchy.fill(col, False)
        hierarchy.fill(row, False)
        _level, extra = hierarchy.lookup(row, True, word_mask=0b10)
        assert extra == 0

    def test_eviction_clears_crossing_bits(self, mapper):
        synonym = SynonymDirectory(mapper)
        hierarchy = small_hierarchy(synonym)
        col = self.col_key(mapper, row=8, col=16)
        row = self.row_key(mapper, row=10, col=16)
        hierarchy.fill(col, False)
        hierarchy.fill(row, False)
        # Force the row line out of the LLC.
        llc = hierarchy.llc
        victim_line = llc.probe(row)
        llc.set_of(row)  # ensure present
        hierarchy._on_llc_eviction(llc.invalidate(row))
        col_line = llc.probe(col)
        assert col_line is not None and col_line.crossing == 0
        assert synonym.stats.eviction_clears == 1
