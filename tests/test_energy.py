"""Energy model extension: pricing, invariants, system comparison."""

import pytest

from repro.memsim.energy import (
    DRAM_ENERGY,
    EnergyBreakdown,
    MODELS,
    RCNVM_ENERGY,
    RRAM_ENERGY,
    energy_of,
    energy_of_run,
)
from repro.memsim.stats import MemoryStats


def stats(activations=0, flushes=0, reads=0, writes=0):
    s = MemoryStats()
    s.activations = activations
    s.dirty_flushes = flushes
    s.reads = reads
    s.writes = writes
    return s


class TestPricing:
    def test_zero_run(self):
        breakdown = energy_of(DRAM_ENERGY, stats(), cycles=0)
        assert breakdown.total_nj == 0.0

    def test_components_add_up(self):
        breakdown = energy_of(RRAM_ENERGY, stats(10, 5, 100, 50), cycles=2_000_000)
        assert breakdown.total_nj == pytest.approx(
            breakdown.activation_nj
            + breakdown.flush_nj
            + breakdown.read_nj
            + breakdown.write_nj
            + breakdown.static_nj
        )

    def test_static_scales_with_time(self):
        short = energy_of(DRAM_ENERGY, stats(), cycles=2_000_000)
        long = energy_of(DRAM_ENERGY, stats(), cycles=4_000_000)
        assert long.static_nj == pytest.approx(2 * short.static_nj)
        # 1 W for 1 ms = 1 uJ = 1e6 nJ at 2 GHz / 2e6 cycles.
        assert short.static_nj == pytest.approx(1e6)

    def test_accepts_snapshot_dict(self):
        snap = stats(3, 1, 5, 2).snapshot()
        breakdown = energy_of(DRAM_ENERGY, snap, cycles=100)
        assert breakdown.activation_nj == pytest.approx(3 * DRAM_ENERGY.activate_nj)


class TestModelShape:
    def test_nvm_writes_cost_more_than_reads(self):
        assert RRAM_ENERGY.flush_nj > RRAM_ENERGY.activate_nj

    def test_dram_restore_is_free(self):
        assert DRAM_ENERGY.flush_nj == 0.0

    def test_nvm_standby_much_lower_than_dram(self):
        assert RRAM_ENERGY.static_w < DRAM_ENERGY.static_w / 10

    def test_rcnvm_pays_figure5_overhead(self):
        assert RCNVM_ENERGY.activate_nj == pytest.approx(RRAM_ENERGY.activate_nj * 1.15)

    def test_all_systems_have_models(self):
        assert set(MODELS) == {"DRAM", "GS-DRAM", "RRAM", "RC-NVM"}


class TestEndToEnd:
    def test_energy_of_real_query(self):
        from conftest import make_database, simple_rows

        db = make_database("RC-NVM", verify=False)
        db.create_table("t", [("a", 8), ("b", 8)], layout="column")
        db.insert_many("t", simple_rows(512, 2))
        outcome = db.execute("SELECT SUM(b) FROM t WHERE a > 500")
        breakdown = energy_of_run("RC-NVM", outcome.timing)
        assert breakdown.total_nj > 0
        assert breakdown.dynamic_nj > 0

    def test_rcnvm_uses_less_energy_than_dram_on_scans(self):
        from conftest import make_database, simple_rows

        consumed = {}
        for system in ("RC-NVM", "DRAM"):
            db = make_database(system, verify=False)
            layout = "column" if db.memory.supports_column else "row"
            db.create_table("t", [(f"f{i}", 8) for i in range(8)], layout=layout)
            db.insert_many("t", simple_rows(1024, 8))
            outcome = db.execute("SELECT SUM(f3) FROM t WHERE f0 > 500")
            consumed[system] = energy_of_run(system, outcome.timing).total_nj
        # Fewer requests, shorter runtime, lower standby: a clear win.
        assert consumed["RC-NVM"] < consumed["DRAM"]
