"""Hybrid DRAM + RC-NVM tier tests (repro.memsim.tiering).

Three layers of proof, mirroring the module's three pieces:

* **HeatTracker** property tests — decay monotonicity (heat never rises
  without traffic and strictly falls until the key is dropped), no
  invented heat, hysteresis band validity;
* **TieringEngine** behaviour — promotion under the capacity budget,
  demotion of cold residents, no promote/demote ping-pong within one
  epoch, ledger consistency, migration accounting on the controllers;
* a **differential model test** — random statement sequences run on the
  tiered stack (migrations interleaving mid-sequence) and on an
  untiered RC-NVM oracle must stay result-identical, with the fuzz
  harness's tier-conservation audit green after every statement.

The allocator seam regressions (an ECC-retired rectangle must never be
handed to a tier migration, and vice versa) live here too.
"""

import dataclasses

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import LayoutError
from repro.fuzz.invariants import check_tier_conservation
from repro.fuzz.oracle import normalize
from repro.geometry import SMALL_RCNVM_GEOMETRY
from repro.harness.systems import SMALL_CACHE_CONFIG, build_system
from repro.imdb.allocator import SubarrayAllocator, TieredAllocator
from repro.imdb.database import Database
from repro.memsim.tiering import (
    HeatTracker,
    TieredMemorySystem,
    TieringEngine,
    make_small_tiered,
)


def _db(system="TIERED", layout="column", n_rows=48, aggressive=True):
    db = Database(
        build_system(system, small=True),
        cache_config=SMALL_CACHE_CONFIG,
        verify=False,
    )
    db.create_table("t", [("id", 8), ("v", 8), ("w", 8)], layout=layout)
    db.insert_many("t", [(i, i * 3, i % 7) for i in range(n_rows)])
    if aggressive and db.tiering is not None:
        db.tiering.epoch_statements = 1
        db.tiering.promote_threshold = 2.0
        db.tiering.demote_threshold = 0.5
    return db


# -- TieredMemorySystem --------------------------------------------------------
class TestTieredMemorySystem:
    def test_channel_split_and_tier_tags(self):
        memory = make_small_tiered()
        nvm = SMALL_RCNVM_GEOMETRY.channels
        assert memory.tiered
        assert memory.nvm_channels == nvm
        assert memory.geometry.channels == 2 * nvm
        for channel, ctrl in enumerate(memory.controllers):
            assert ctrl.tier == memory.tier_of_channel(channel)
        assert memory.tier_of_channel(0) == 0
        assert memory.tier_of_channel(nvm) == 1

    def test_dram_channels_run_dram_timing(self):
        memory = make_small_tiered()
        nvm_ctrl = memory.controllers[0]
        dram_ctrl = memory.controllers[memory.nvm_channels]
        assert dram_ctrl.timing is memory.dram_timing
        assert nvm_ctrl.timing is memory.timing
        assert memory.timing_of_tier(0) is memory.timing
        assert memory.timing_of_tier(1) is memory.dram_timing

    def test_requests_stamp_tier_and_partition_counters(self):
        from repro.core.addressing import Coordinate, Orientation

        memory = make_small_tiered()
        memory.access(Coordinate(0, 0, 0, 0, 0, 0), Orientation.ROW, False, 0)
        dram_channel = memory.nvm_channels
        memory.access(
            Coordinate(dram_channel, 0, 0, 0, 0, 0), Orientation.ROW, False, 0
        )
        stats = memory.stats
        assert stats.tier_nvm_accesses == 1
        assert stats.tier_dram_accesses == 1
        assert stats.check_conservation() == []
        assert memory.tier_stats(0).accesses == 1
        assert memory.tier_stats(1).accesses == 1

    def test_snapshot_carries_tier_counters(self):
        snap = make_small_tiered().stats.snapshot()
        for key in ("tier_dram_accesses", "tier_nvm_accesses",
                    "chunks_promoted", "migration_cells"):
            assert key in snap


# -- HeatTracker properties ----------------------------------------------------
_KEYS = st.sampled_from([("t", 0), ("t", 16), ("u", 0)])


class TestHeatTracker:
    def test_rejects_bad_decay_and_negative_counts(self):
        with pytest.raises(ValueError):
            HeatTracker(decay=1.0)
        with pytest.raises(ValueError):
            HeatTracker(decay=-0.1)
        tracker = HeatTracker()
        with pytest.raises(ValueError):
            tracker.record(("t", 0), -1)

    def test_never_invents_heat(self):
        tracker = HeatTracker()
        assert tracker.heat_of(("t", 0)) == 0.0
        tracker.advance_epoch()
        assert tracker.heat == {}

    @settings(max_examples=50, deadline=None)
    @given(
        counts=st.lists(st.integers(min_value=0, max_value=1000), min_size=1,
                        max_size=6),
        decay=st.floats(min_value=0.0, max_value=0.95),
        idle_epochs=st.integers(min_value=1, max_value=30),
    )
    def test_decay_is_monotone_and_reaches_zero(self, counts, decay,
                                                idle_epochs):
        """With no new traffic heat never increases, strictly decreases
        while nonzero, and eventually the key is dropped entirely."""
        tracker = HeatTracker(decay=decay, min_heat=1e-3)
        key = ("t", 0)
        for n in counts:
            tracker.record(key, n)
        tracker.advance_epoch()
        previous = tracker.heat_of(key)
        for _ in range(idle_epochs):
            tracker.advance_epoch()
            current = tracker.heat_of(key)
            assert current <= previous
            if previous > 0 and decay < 1.0:
                assert current < previous or current == 0.0
            previous = current
        # Geometric decay with a positive floor always terminates.
        for _ in range(2000):
            if tracker.heat_of(key) == 0.0:
                break
            tracker.advance_epoch()
        assert tracker.heat_of(key) == 0.0
        assert key not in tracker.heat  # dropped, not just zeroed

    @settings(max_examples=50, deadline=None)
    @given(
        events=st.lists(
            st.tuples(_KEYS, st.integers(min_value=0, max_value=100)),
            max_size=20,
        )
    )
    def test_heat_is_bounded_by_total_traffic(self, events):
        tracker = HeatTracker(decay=0.5)
        total = {}
        for key, n in events:
            tracker.record(key, n)
            total[key] = total.get(key, 0) + n
        tracker.advance_epoch()
        for key, n in total.items():
            assert tracker.heat_of(key) <= n


# -- TieringEngine -------------------------------------------------------------
class TestTieringEngine:
    def test_hysteresis_band_is_enforced(self):
        db = _db(aggressive=False)
        with pytest.raises(ValueError):
            TieringEngine(db, promote_threshold=4.0, demote_threshold=4.0)
        with pytest.raises(ValueError):
            TieringEngine(db, promote_threshold=1.0, demote_threshold=4.0)
        with pytest.raises(ValueError):
            TieringEngine(db, epoch_statements=0)

    def test_between_thresholds_nothing_moves(self):
        """A chunk whose heat sits inside the hysteresis band stays put —
        the no-move band that rules out threshold flapping."""
        db = _db(aggressive=False)
        engine = db.tiering
        engine.promote_threshold = 100.0
        engine.demote_threshold = 1.0
        chunk = db.tables["t"].chunks[0]
        key = engine.chunk_key(db.tables["t"], chunk)
        engine.tracker.heat[key] = 50.0  # inside the band
        assert engine.rebalance() == 0
        assert engine.tier_of_placement(chunk.placement) == 0

    def test_promotion_respects_capacity_budget(self):
        db = _db(aggressive=False)
        engine = db.tiering
        table = db.tables["t"]
        chunk = table.chunks[0]
        engine.tracker.heat[engine.chunk_key(table, chunk)] = 1e6
        engine.capacity_cells = chunk.width * chunk.height - 1  # one short
        assert engine.rebalance() == 0
        assert engine.tier_of_placement(chunk.placement) == 0
        engine.capacity_cells = chunk.width * chunk.height
        assert engine.rebalance() == 1
        assert engine.tier_of_placement(chunk.placement) == 1
        assert engine.promotions == 1
        assert engine.check_consistency() == []

    def test_no_ping_pong_within_one_epoch(self):
        """A chunk promoted this epoch cannot be demoted in the same
        epoch even if its heat collapses below the demote threshold."""
        db = _db(aggressive=False)
        engine = db.tiering
        table = db.tables["t"]
        chunk = table.chunks[0]
        key = engine.chunk_key(table, chunk)
        engine.tracker.heat[key] = 1e6
        assert engine.rebalance() == 1
        assert engine.tier_of_placement(chunk.placement) == 1
        engine.tracker.heat[key] = 0.0  # ice cold, same epoch
        assert engine.rebalance() == 0
        assert engine.tier_of_placement(chunk.placement) == 1
        # Next epoch, the demotion is allowed.
        engine.epoch += 1
        assert engine.rebalance() == 1
        assert engine.tier_of_placement(chunk.placement) == 0
        assert (engine.promotions, engine.demotions) == (1, 1)
        assert engine.check_consistency() == []

    def test_migration_charges_controller_counters(self):
        db = _db(aggressive=False)
        engine = db.tiering
        table = db.tables["t"]
        chunk = table.chunks[0]
        engine.tracker.heat[engine.chunk_key(table, chunk)] = 1e6
        assert engine.rebalance() == 1
        merged = db.memory.stats
        assert merged.chunks_promoted == 1
        assert merged.migration_cells == chunk.width * chunk.height
        assert merged.migration_cycles > 0

    def test_migrated_chunk_reads_back_identically(self):
        db = _db(aggressive=False)
        before = normalize(db.execute("SELECT id, v, w FROM t").result)
        engine = db.tiering
        table = db.tables["t"]
        for chunk in list(table.chunks):
            engine.tracker.heat[engine.chunk_key(table, chunk)] = 1e6
        engine.capacity_cells = 10**9
        assert engine.rebalance() >= 1
        after = normalize(db.execute("SELECT id, v, w FROM t").result)
        assert after == before
        assert check_tier_conservation(db) == []

    def test_statement_driven_promotion_moves_traffic_to_dram(self):
        """The end-to-end loop: repeated queries heat the chunk, the
        epoch boundary promotes it, later statements hit the DRAM tier."""
        db = _db()
        db.tiering.capacity_cells = 10**9
        for _ in range(4):
            db.execute("SELECT SUM(v) FROM t")
        assert db.tiering.promotions >= 1
        outcome = db.execute("SELECT SUM(v) FROM t")
        memory = outcome.timing.memory
        assert memory["tier_dram_accesses"] > 0
        assert check_tier_conservation(db) == []


# -- allocator seams (ECC retire vs tier free) ---------------------------------
class TestAllocatorSeams:
    def test_freed_rectangle_is_reused_retired_never(self):
        alloc = SubarrayAllocator(SMALL_RCNVM_GEOMETRY)
        a = alloc.place(10, 6)
        b = alloc.place(10, 6)
        alloc.free(a)
        reused = alloc.place(10, 6)
        assert (reused.bin_index, reused.x, reused.y) == (a.bin_index, a.x, a.y)
        alloc.retire(b)
        fresh = alloc.place(10, 6)
        assert (fresh.bin_index, fresh.x, fresh.y) != (b.bin_index, b.x, b.y)

    def test_free_of_a_retired_rectangle_raises(self):
        """The regression seam: an ECC-retired (damaged) rectangle must
        never reach the freed list a tier demotion draws from."""
        alloc = SubarrayAllocator(SMALL_RCNVM_GEOMETRY)
        p = alloc.place(8, 8)
        alloc.retire(p)
        with pytest.raises(LayoutError):
            alloc.free(p)
        assert p not in alloc.freed_placements

    def test_retire_pulls_rectangle_off_the_freed_list(self):
        """Demote-then-damage: a rectangle freed by a migration and later
        found faulty is retired in place, not handed out again."""
        alloc = SubarrayAllocator(SMALL_RCNVM_GEOMETRY)
        p = alloc.place(8, 8)
        alloc.free(p)
        alloc.retire(p)
        assert p not in alloc.freed_placements
        replacement = alloc.place(8, 8)
        assert (replacement.bin_index, replacement.x, replacement.y) != (
            p.bin_index, p.x, p.y
        )

    def test_tiered_allocator_routes_by_channel(self):
        g = dataclasses.replace(
            SMALL_RCNVM_GEOMETRY, channels=SMALL_RCNVM_GEOMETRY.channels * 2
        )
        nvm = SMALL_RCNVM_GEOMETRY.channels
        alloc = TieredAllocator(g, nvm_channels=nvm)
        per_channel = g.ranks * g.banks * g.subarrays
        low = alloc.place(8, 8)
        high = alloc.place(8, 8, tier=1)
        assert low.bin_index // per_channel < nvm
        assert high.bin_index // per_channel >= nvm
        assert alloc.tier_of(low) == 0
        assert alloc.tier_of(high) == 1
        alloc.free(high)
        assert alloc.dram.freed_placements == [high]
        alloc.retire(low)
        assert low in alloc.retired

    def test_tiered_allocator_rejects_bad_split(self):
        with pytest.raises(LayoutError):
            TieredAllocator(SMALL_RCNVM_GEOMETRY,
                            nvm_channels=SMALL_RCNVM_GEOMETRY.channels)

    def test_ecc_retired_and_demoted_chunk_never_share_a_rectangle(self):
        """End-to-end seam: promote a chunk, retire its vacated NVM rect
        (as an ECC remap would), then demote — the demotion must land on
        a fresh rectangle, never the damaged one."""
        db = _db(aggressive=False)
        engine = db.tiering
        table = db.tables["t"]
        chunk = table.chunks[0]
        old_nvm = chunk.placement
        engine.tracker.heat[engine.chunk_key(table, chunk)] = 1e6
        assert engine.rebalance() == 1
        # The vacated NVM rectangle turns out to be damaged.
        db.allocator.retire(old_nvm)
        engine.epoch += 1
        engine.tracker.heat[engine.chunk_key(table, chunk)] = 0.0
        assert engine.rebalance() == 1  # demoted
        assert engine.tier_of_placement(chunk.placement) == 0
        assert (chunk.placement.bin_index, chunk.placement.x,
                chunk.placement.y) != (old_nvm.bin_index, old_nvm.x, old_nvm.y)
        assert normalize(db.execute("SELECT id, v, w FROM t").result) == \
            normalize(db.execute("SELECT id, v, w FROM t").result)


# -- differential model test ---------------------------------------------------
_STATEMENTS = (
    ("SELECT id, v FROM t WHERE v > p", {"p": 30}, None),
    ("SELECT SUM(w) FROM t", {}, None),
    ("SELECT id FROM t WHERE id < p", {"p": 9}, None),
    ("SELECT id, v, w FROM t", {}, None),
    ("UPDATE t SET v = p WHERE id = q", None, "kv"),
    ("UPDATE t SET w = p WHERE v > q", None, "kv"),
)


@settings(max_examples=6, deadline=None)
@given(
    script=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=len(_STATEMENTS) - 1),
            st.integers(min_value=0, max_value=60),
            st.integers(min_value=0, max_value=120),
        ),
        min_size=4,
        max_size=10,
    )
)
def test_random_statements_match_untiered_oracle(script):
    """Random reads and updates interleaved with migrations on the
    tiered stack must produce bit-identical results to the untiered
    RC-NVM oracle, and every statement must pass the tier-conservation
    audit."""
    tiered = _db("TIERED")
    oracle = _db("RC-NVM")
    tiered.tiering.capacity_cells = 10**9
    for choice, a, b in script:
        sql, params, kind = _STATEMENTS[choice]
        if kind == "kv":
            params = {"p": a, "q": b}
        got = normalize(tiered.execute(sql, params=params).result)
        want = normalize(oracle.execute(sql, params=params).result)
        assert got == want
        assert check_tier_conservation(tiered) == []
    # Final functional state agrees field by field.
    for field in ("id", "v", "w"):
        assert tiered.tables["t"].field_values(field).tolist() == \
            oracle.tables["t"].field_values(field).tolist()
    assert tiered.tiering.check_consistency() == []


# -- cost model / planner tier awareness ---------------------------------------
class TestTierAwareCosts:
    def test_dram_fraction_tracks_promotion(self):
        from repro.imdb.cost import CostModel

        db = _db(aggressive=False)
        model = CostModel(db)
        table = db.tables["t"]
        assert model.dram_fraction(table) == 0.0
        engine = db.tiering
        engine.tracker.heat[engine.chunk_key(table, table.chunks[0])] = 1e6
        engine.capacity_cells = 10**9
        assert engine.rebalance() == 1
        assert CostModel(db).dram_fraction(table) == 1.0

    def test_untiered_model_reports_zero_fraction(self):
        from repro.imdb.cost import CostModel

        db = _db("RC-NVM")
        assert CostModel(db).dram_fraction(db.tables["t"]) == 0.0

    def test_promotion_lowers_estimated_cost(self):
        from repro.imdb.cost import CostModel

        db = _db(aggressive=False)
        sql = "SELECT id, v FROM t WHERE v > 30"
        before = CostModel(db).estimate(db.plan(sql)).cycles
        engine = db.tiering
        table = db.tables["t"]
        for chunk in table.chunks:
            engine.tracker.heat[engine.chunk_key(table, chunk)] = 1e6
        engine.capacity_cells = 10**9
        assert engine.rebalance() >= 1
        after = CostModel(db).estimate(db.plan(sql)).cycles
        assert after < before

    def test_tier_tuned_plan_is_result_identical(self):
        db = _db(aggressive=False)
        sql = "SELECT id FROM t WHERE v > 30"
        before = normalize(db.execute(sql).result)
        engine = db.tiering
        table = db.tables["t"]
        for chunk in table.chunks:
            engine.tracker.heat[engine.chunk_key(table, chunk)] = 1e6
        engine.capacity_cells = 10**9
        engine.rebalance()
        assert normalize(db.execute(sql).result) == before
