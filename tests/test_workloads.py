"""Workloads: data generators, Table 2 specs, micro-benchmarks."""

import numpy as np
import pytest

from repro.imdb.chunks import IntraLayout
from repro.memsim.system import make_small_dram, make_small_rcnvm
from repro.workloads import datagen, microbench, queries, suite, tables


class TestTables:
    def test_table_a_shape(self):
        fields = tables.table_a_fields()
        assert len(fields) == 16
        assert all(nbytes == 8 for _n, nbytes in fields)

    def test_table_b_shape(self):
        assert len(tables.table_b_fields()) == 20

    def test_table_c_has_wide_field(self):
        fields = dict(tables.table_c_fields())
        assert len(fields) == 5
        assert fields["f2_wide"] == 32
        assert len(set(nbytes for nbytes in fields.values())) > 1  # variant widths

    def test_table_a_tuple_is_power_of_two(self):
        words = sum(nbytes // 8 for _n, nbytes in tables.table_a_fields())
        assert words & (words - 1) == 0

    def test_table_b_tuple_is_not_power_of_two(self):
        words = sum(nbytes // 8 for _n, nbytes in tables.table_b_fields())
        assert words & (words - 1) != 0


class TestDatagen:
    def test_deterministic(self):
        a = datagen.generate_packed(tables.TABLE_A, 100, 16)
        b = datagen.generate_packed(tables.TABLE_A, 100, 16)
        assert (a == b).all()

    def test_different_tables_differ(self):
        a = datagen.generate_packed(tables.TABLE_A, 100, 16)
        b = datagen.generate_packed(tables.TABLE_B, 100, 16)
        assert not (a == b).all()

    def test_f9_is_permutation(self):
        data = datagen.generate_packed(tables.TABLE_A, 256, 16)
        assert sorted(data[:, 8]) == list(range(256))

    def test_f10_in_range(self):
        data = datagen.generate_packed(tables.TABLE_B, 500, 20)
        assert data[:, 9].min() >= 0 and data[:, 9].max() < datagen.F10_RANGE

    def test_selectivity_of(self):
        assert datagen.selectivity_of(899) == pytest.approx(0.1)
        assert datagen.selectivity_of(-1) == 1.0
        assert datagen.selectivity_of(10_000) == 0.0


class TestQuerySpecs:
    def test_all_15_queries_defined(self):
        assert len(queries.QUERIES) == 15
        assert queries.SQL_BENCHMARK_IDS == tuple(f"Q{i}" for i in range(1, 14))
        assert queries.GROUP_CACHING_IDS == ("Q14", "Q15")

    def test_q2_is_selective_q3_is_not(self):
        q2 = queries.query("Q2")
        q3 = queries.query("Q3")
        assert datagen.selectivity_of(q2.params["x"]) < 0.5
        assert datagen.selectivity_of(q3.params["x"]) > 0.5

    def test_categories(self):
        assert queries.query("Q4").category == "OLAP"
        assert queries.query("Q12").category == "OLTP"
        assert queries.query("Q14").category == "group-caching"

    def test_join_queries_reference_both_tables(self):
        for qid in ("Q8", "Q9"):
            spec = queries.query(qid)
            assert set(spec.tables) == {tables.TABLE_A, tables.TABLE_B}


class TestSuite:
    def test_default_layout_by_system(self):
        assert suite.default_layout(make_small_rcnvm()) is IntraLayout.COLUMN
        assert suite.default_layout(make_small_dram()) is IntraLayout.ROW

    def test_build_benchmark_database(self):
        db = suite.build_benchmark_database(
            make_small_rcnvm(), scale=0.02,
            cache_config=dict(l1_kib=4, l2_kib=16, l3_kib=64),
        )
        for name in (tables.TABLE_A, tables.TABLE_B, tables.TABLE_C):
            assert db.table(name).n_tuples >= 64

    def test_scale_changes_size(self):
        small = suite.build_benchmark_database(
            make_small_rcnvm(), scale=0.02, tables=[tables.TABLE_A],
            cache_config=dict(l1_kib=4, l2_kib=16, l3_kib=64),
        )
        bigger = suite.build_benchmark_database(
            make_small_rcnvm(), scale=0.04, tables=[tables.TABLE_A],
            cache_config=dict(l1_kib=4, l2_kib=16, l3_kib=64),
        )
        assert bigger.table(tables.TABLE_A).n_tuples > small.table(tables.TABLE_A).n_tuples


class TestMicrobench:
    def test_kernel_parse(self):
        kernel = microbench.Kernel.parse("col-write-L2")
        assert kernel.direction == "col"
        assert kernel.write
        assert kernel.layout is IntraLayout.COLUMN

    def test_kernel_names_all_parse(self):
        for name in microbench.KERNELS:
            microbench.Kernel.parse(name)

    def test_emit_kernel_row_read(self):
        memory = make_small_rcnvm()
        db, table = microbench.build_micro_database(
            memory, IntraLayout.ROW, n_tuples=64, n_fields=4,
            cache_config=dict(l1_kib=4, l2_kib=16, l3_kib=64),
        )
        trace = microbench.emit_kernel(db, table, microbench.Kernel.parse("row-read-L1"))
        assert len(trace) == 64
        assert not any(a.is_write for a in trace)

    def test_emit_kernel_col_write_has_writes(self):
        memory = make_small_rcnvm()
        db, table = microbench.build_micro_database(
            memory, IntraLayout.COLUMN, n_tuples=64, n_fields=4,
            cache_config=dict(l1_kib=4, l2_kib=16, l3_kib=64),
        )
        trace = microbench.emit_kernel(db, table, microbench.Kernel.parse("col-write-L2"))
        assert all(a.is_write for a in trace)
