"""The plan/trace template cache: serving-path memoization correctness.

The cache may only ever change *when* work happens, never *what* comes
out: a hit must reproduce the exact result and timing a fresh execution
would, and every way the underlying data can shift — DDL, chunk remaps,
recovery re-placement, functional writes — must invalidate.  The lattice
test at the bottom runs fuzz-generated workloads through paired cached
and uncached databases across system configs and demands bit-identical
results and cycle counts.
"""

import pytest

from conftest import make_database, simple_rows
from repro.cpu.tracetemplate import TraceTemplateCache
from repro.fuzz.grammar import CaseGenerator, render_sql
from repro.fuzz.oracle import CONFIGS, build_database, normalize


def make_cached_db(system="RC-NVM", rows=200, **kwargs):
    # verify=False: result verification re-executes on purpose, so the
    # cache stands down under it (tested below).
    db = make_database(system, verify=False, **kwargs)
    db.create_table("t", [("a", 8), ("b", 8)], layout="row")
    db.insert_many("t", simple_rows(rows, 2))
    db.enable_template_cache()
    return db


SUM_SQL = "SELECT SUM(b) FROM t WHERE a > x"


class TestHitPath:
    def test_miss_then_hit(self):
        db = make_cached_db()
        stats = db.template_cache.stats
        first = db.execute(SUM_SQL, params={"x": 100})
        assert (stats.misses, stats.hits, stats.stores) == (1, 0, 1)
        second = db.execute(SUM_SQL, params={"x": 100})
        assert (stats.misses, stats.hits) == (1, 1)
        assert second.result.value == first.result.value
        assert second.timing.cycles == first.timing.cycles
        assert stats.hit_rate == 0.5

    def test_hit_reuses_the_trace_verbatim(self):
        db = make_cached_db()
        first = db.execute(SUM_SQL, params={"x": 100})
        second = db.execute(SUM_SQL, params={"x": 100})
        assert second.trace is first.trace

    def test_whitespace_normalized_template_key(self):
        db = make_cached_db()
        db.execute(SUM_SQL, params={"x": 100})
        db.execute("SELECT  SUM(b)\n FROM t   WHERE a > x", params={"x": 100})
        assert db.template_cache.stats.hits == 1

    def test_hit_result_is_a_defensive_copy(self):
        db = make_cached_db()
        first = db.execute("SELECT a, b FROM t WHERE a > x", params={"x": 900})
        first.result.rows.clear()
        second = db.execute("SELECT a, b FROM t WHERE a > x", params={"x": 900})
        assert second.result.rows  # the cached entry survived the mutation

    def test_distinct_params_are_distinct_bindings(self):
        db = make_cached_db()
        low = db.execute(SUM_SQL, params={"x": 100}).result.value
        high = db.execute(SUM_SQL, params={"x": 900}).result.value
        assert low != high
        # Repeats of both bindings hit.
        assert db.execute(SUM_SQL, params={"x": 100}).result.value == low
        assert db.execute(SUM_SQL, params={"x": 900}).result.value == high
        assert db.template_cache.stats.hits == 2

    def test_matches_an_uncached_database(self):
        cached = make_cached_db()
        plain = make_database("RC-NVM", verify=False)
        plain.create_table("t", [("a", 8), ("b", 8)], layout="row")
        plain.insert_many("t", simple_rows(200, 2))
        for _ in range(3):
            a = cached.execute(SUM_SQL, params={"x": 500})
            b = plain.execute(SUM_SQL, params={"x": 500})
            assert a.result.value == b.result.value
            assert a.timing.cycles == b.timing.cycles


class TestRebind:
    def test_aggregate_rebind_reuses_trace(self):
        db = make_cached_db()
        first = db.execute(SUM_SQL, params={"x": 100})
        rebound = db.execute(SUM_SQL, params={"x": 700})
        stats = db.template_cache.stats
        assert stats.rebinds == 1 and stats.rebind_ns > 0
        assert rebound.trace is first.trace
        fresh = make_cached_db().execute(SUM_SQL, params={"x": 700})
        assert rebound.result.value == fresh.result.value
        assert rebound.timing.cycles == fresh.timing.cycles

    def test_rebound_binding_then_hits(self):
        db = make_cached_db()
        db.execute(SUM_SQL, params={"x": 100})
        db.execute(SUM_SQL, params={"x": 700})
        db.execute(SUM_SQL, params={"x": 700})
        stats = db.template_cache.stats
        assert (stats.rebinds, stats.hits) == (1, 1)

    def test_index_probe_is_not_rebind_safe(self):
        # An index-backed aggregate touches only the matching tuples, so
        # its trace depends on the constant: new params must re-execute.
        db = make_cached_db()
        db.create_index("t", "a")
        value = db.tables["t"].read_tuple(0)[0]
        db.execute("SELECT SUM(b) FROM t WHERE a = x", params={"x": value})
        db.execute("SELECT SUM(b) FROM t WHERE a = x", params={"x": value + 1})
        stats = db.template_cache.stats
        assert stats.rebinds == 0 and stats.misses == 2


class TestInvalidation:
    def test_ddl_mid_stream_invalidates(self):
        db = make_cached_db()
        db.execute(SUM_SQL, params={"x": 100})
        before = db.execute(SUM_SQL, params={"x": 100}).result.value
        db.create_index("t", "a")  # layout epoch bumps; plans may change
        stats = db.template_cache.stats
        outcome = db.execute(SUM_SQL, params={"x": 100})
        assert stats.invalidations >= 1
        assert outcome.result.value == before
        assert stats.misses == 2  # re-executed, not served stale

    def test_drop_table_invalidates_without_stale_reads(self):
        db = make_cached_db()
        db.execute(SUM_SQL, params={"x": 100})
        db.drop_table("t")
        db.create_table("t", [("a", 8), ("b", 8)], layout="row")
        db.insert_many("t", [(1, 7), (2, 9)])
        outcome = db.execute(SUM_SQL, params={"x": 0})
        assert outcome.result.value == 16

    def test_update_that_changes_data_invalidates(self):
        db = make_cached_db(rows=64)
        before = db.execute(SUM_SQL, params={"x": 0}).result.value
        db.execute(SUM_SQL, params={"x": 0})
        db.execute("UPDATE t SET b = v WHERE a > y", params={"v": 0, "y": 500})
        outcome = db.execute(SUM_SQL, params={"x": 0})
        assert outcome.result.value < before
        stats = db.template_cache.stats
        assert stats.invalidations >= 1

    def test_mutating_update_is_never_cached(self):
        db = make_cached_db(rows=64)
        stats = db.template_cache.stats
        db.execute("UPDATE t SET b = v WHERE a > y", params={"v": 1, "y": 500})
        db.execute("UPDATE t SET b = v WHERE a > y", params={"v": 2, "y": 500})
        # Both executions changed cells, so neither was stored.
        assert stats.stores == 0 and stats.hits == 0

    def test_idempotent_update_reaches_hit_fixed_point(self):
        db = make_cached_db(rows=64)
        stats = db.template_cache.stats
        sql = "UPDATE t SET b = v WHERE a > y"
        db.execute(sql, params={"v": 5, "y": 500})  # mutates: not stored
        db.execute(sql, params={"v": 5, "y": 500})  # no-op now: stored
        db.execute(sql, params={"v": 5, "y": 500})  # hit
        assert (stats.misses, stats.stores, stats.hits) == (2, 1, 1)

    def test_insert_invalidates_via_geometry_epoch(self):
        db = make_cached_db()
        before = db.execute(SUM_SQL, params={"x": 0}).result.value
        db.insert_many("t", [(1000, 1000)])
        outcome = db.execute(SUM_SQL, params={"x": 0})
        assert outcome.result.value == before + 1000
        assert db.template_cache.stats.hits == 0

    def test_chunk_remap_invalidates(self):
        # Recovery re-placement moves a chunk to a fresh rectangle: the
        # cached trace addresses the old cells and must die.
        db = make_cached_db(rows=600)
        db.enable_reliability()
        db.execute(SUM_SQL, params={"x": 0})
        db.execute(SUM_SQL, params={"x": 0})
        assert db.template_cache.stats.hits == 1
        table = db.tables["t"]
        epoch = table.geometry_epoch
        placement = table.chunks[0].placement
        event = db.recover_cell(
            placement.bin_index, placement.y, placement.x
        )
        assert event is not None
        assert table.geometry_epoch > epoch
        stats = db.template_cache.stats
        hits_before = stats.hits
        outcome = db.execute(SUM_SQL, params={"x": 0})
        assert stats.hits == hits_before  # re-executed against new placement
        assert stats.invalidations >= 1
        fresh = make_cached_db(rows=600).execute(SUM_SQL, params={"x": 0})
        assert outcome.result.value == fresh.result.value


class TestBypass:
    def test_verify_bypasses_the_cache(self):
        db = make_cached_db()
        db.execute(SUM_SQL, params={"x": 100}, verify=True)
        db.execute(SUM_SQL, params={"x": 100}, verify=True)
        assert db.template_cache.stats.lookups == 0

    def test_durability_bypasses_the_cache(self):
        db = make_database("RC-NVM", verify=False)
        db.enable_durability()  # must precede table creation (WAL anchor)
        db.create_table("t", [("a", 8), ("b", 8)], layout="row")
        db.insert_many("t", simple_rows(200, 2))
        db.enable_template_cache()
        db.execute(SUM_SQL, params={"x": 100})
        db.execute(SUM_SQL, params={"x": 100})
        assert db.template_cache.stats.lookups == 0

    def test_clear_counts_invalidations(self):
        db = make_cached_db()
        db.execute(SUM_SQL, params={"x": 100})
        cache = db.template_cache
        assert len(cache) == 1
        cache.clear()
        assert len(cache) == 0 and cache.stats.invalidations == 1
        db.execute(SUM_SQL, params={"x": 100})
        assert cache.stats.misses == 2


class TestStatsSurface:
    def test_snapshot_fields(self):
        db = make_cached_db()
        db.execute(SUM_SQL, params={"x": 100})
        db.execute(SUM_SQL, params={"x": 100})
        snap = db.template_cache.stats.snapshot()
        assert snap["hits"] == 1 and snap["misses"] == 1
        assert snap["entries"] == 1
        assert snap["hit_rate"] == 0.5

    def test_registry_binding(self):
        from repro.obs.metrics import registry_for_database

        db = make_cached_db()
        registry = registry_for_database(db)
        db.execute(SUM_SQL, params={"x": 100})
        db.execute(SUM_SQL, params={"x": 100})
        labels = {"system": db.memory.name}
        assert registry.get("template_cache.hits", labels).value == 1
        assert registry.get("template_cache.entries", labels).value == 1


#: Lattice cross-section for the on-vs-off sweep: the reference row
#: config, a column layout, Z-order grouping, and ECC demand checks.
LATTICE_KEYS = ("dram-row", "rcnvm-col", "rcnvm-col-z", "rcnvm-row-ecc")


@pytest.mark.parametrize("config_key", LATTICE_KEYS)
def test_fuzz_lattice_templating_on_vs_off(config_key):
    """Fuzz-generated workloads (reads, updates, joins, repeats) served
    through the template cache must be indistinguishable — results and
    simulated cycles — from an uncached database on the same config."""
    from repro.errors import ReproError

    config = CONFIGS[config_key]
    generator = CaseGenerator(seed=20)
    for index in range(4):
        case = generator.case(index)
        plain = build_database(config, case)
        cached = build_database(config, case)
        cached.enable_template_cache()
        # Each statement runs twice so repeats exercise the hit path.
        for stmt in case.statements:
            if stmt.get("expect_error"):
                continue
            sql, params = render_sql(stmt)
            for _ in range(2):
                try:
                    expected = plain.execute(sql, params=params)
                except ReproError as exc:
                    with pytest.raises(type(exc)):
                        cached.execute(sql, params=params)
                    continue
                got = cached.execute(sql, params=params)
                tag = (config_key, index, sql)
                assert normalize(got.result) == normalize(expected.result), tag
                assert got.timing.cycles == expected.timing.cycles, tag
        stats = cached.template_cache.stats
        if config.ecc:
            continue  # demand-check recoveries may legitimately invalidate
        assert stats.lookups == stats.hits + stats.misses + stats.rebinds
