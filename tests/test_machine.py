"""Single-core machine model: window, barriers, pinning, accounting."""

import pytest

from repro.cache.hierarchy import make_hierarchy
from repro.cache.synonym import SynonymDirectory
from repro.core import isa
from repro.core.addressing import Coordinate, Orientation
from repro.cpu.machine import Machine
from repro.cpu.trace import Access, Op
from repro.errors import CapabilityError
from repro.memsim.system import make_small_dram, make_small_rcnvm

SMALL = dict(l1_kib=4, l2_kib=16, l3_kib=64)


def rcnvm_machine(window=8):
    memory = make_small_rcnvm()
    hierarchy = make_hierarchy(synonym=SynonymDirectory(memory.mapper), **SMALL)
    return Machine(memory, hierarchy, window=window), memory


def dram_machine(window=8):
    memory = make_small_dram()
    hierarchy = make_hierarchy(**SMALL)
    return Machine(memory, hierarchy, window=window), memory


def row_addr(memory, row, col=0):
    return memory.mapper.encode_row(Coordinate(0, 0, 0, 0, row, col))


def col_addr(memory, row, col):
    return memory.mapper.encode_col(Coordinate(0, 0, 0, 0, row, col))


class TestBasics:
    def test_empty_trace(self):
        machine, _memory = rcnvm_machine()
        result = machine.run([])
        assert result.cycles == 0 and result.accesses == 0

    def test_single_read(self):
        machine, memory = rcnvm_machine()
        result = machine.run([isa.load(row_addr(memory, 0), size=64)])
        assert result.llc_misses == 1
        assert result.cycles > 0
        assert result.memory["reads"] == 1

    def test_repeat_hits_l1(self):
        machine, memory = rcnvm_machine()
        addr = row_addr(memory, 0)
        result = machine.run([isa.load(addr), isa.load(addr), isa.load(addr)])
        assert result.llc_misses == 1
        assert result.l1_hits == 2

    def test_multi_line_access_split(self):
        machine, memory = rcnvm_machine()
        result = machine.run([isa.load(row_addr(memory, 0), size=256)])
        assert result.lines_touched == 4
        assert result.llc_misses == 4

    def test_write_allocates_and_writes_back_on_flush(self):
        machine, memory = rcnvm_machine()
        result = machine.run([isa.store(row_addr(memory, 0), size=64)])
        # Write-allocate: a read fill happened; dirty data stays cached.
        assert result.llc_misses == 1
        assert result.writes == 1

    def test_column_read_on_rcnvm(self):
        machine, memory = rcnvm_machine()
        result = machine.run([isa.cload(col_addr(memory, 0, 5), size=64)])
        assert result.memory["col_oriented"] == 1

    def test_column_read_on_dram_rejected(self):
        machine, memory = dram_machine()
        with pytest.raises(CapabilityError):
            machine.run([isa.cload(0, size=64)])

    def test_gather_requires_coord(self):
        machine, _memory = rcnvm_machine()
        access = Access(Op.GATHER, 1 << 41, size=64)
        with pytest.raises(CapabilityError):
            machine.run([access])

    def test_gather_on_gsdram(self):
        from repro.memsim.system import make_gsdram
        from repro.geometry import SMALL_DRAM_GEOMETRY

        memory = make_gsdram(SMALL_DRAM_GEOMETRY)
        machine = Machine(memory, make_hierarchy(**SMALL))
        coord = Coordinate(0, 0, 0, 0, 3, 0)
        result = machine.run([isa.gather_load(1 << 41, coord)])
        assert result.memory["gathers"] == 1


class TestWindow:
    def test_window_limits_overlap(self):
        # A tiny window must be slower than a big one on a miss stream
        # spread across banks.
        def run(window):
            machine, memory = rcnvm_machine(window=window)
            trace = [
                isa.load(memory.mapper.encode_row(Coordinate(0, 0, b % 4, 0, i, 0)), size=64)
                for i, b in zip(range(64), range(64))
            ]
            return machine.run(trace).cycles

        assert run(window=1) > run(window=8)

    def test_barrier_serializes(self):
        machine, memory = rcnvm_machine()
        trace = [isa.load(row_addr(memory, i), size=64) for i in range(8)]
        barrier_trace = [
            isa.load(row_addr(memory, i), size=64, barrier=True) for i in range(8)
        ]
        free = machine.run(trace).cycles
        machine2, memory2 = rcnvm_machine()
        barrier_trace = [
            isa.load(row_addr(memory2, i), size=64, barrier=True) for i in range(8)
        ]
        serialized = machine2.run(barrier_trace).cycles
        assert serialized >= free

    def test_gap_accumulates(self):
        machine, memory = rcnvm_machine()
        addr = row_addr(memory, 0)
        base = machine.run([isa.load(addr)]).cycles
        machine2, memory2 = rcnvm_machine()
        padded = machine2.run([isa.load(row_addr(memory2, 0), gap=1000)]).cycles
        assert padded >= base + 900


class TestPinning:
    def test_pin_then_unpin(self):
        machine, memory = rcnvm_machine()
        addr = col_addr(memory, 0, 5)
        result = machine.run(
            [
                isa.cload(addr, size=64, pin=True),
                isa.unpin(addr, 64, Orientation.COLUMN),
            ]
        )
        from repro.cache.line import line_key

        line = machine.hierarchy.llc.probe(line_key(addr, Orientation.COLUMN))
        assert line is not None and not line.pinned

    def test_pin_flag_sets_llc_pin(self):
        machine, memory = rcnvm_machine()
        addr = col_addr(memory, 0, 5)
        machine.run([isa.cload(addr, size=64, pin=True)])
        from repro.cache.line import line_key

        assert machine.hierarchy.llc.probe(line_key(addr, Orientation.COLUMN)).pinned


class TestAccounting:
    def test_synonym_cycles_counted(self):
        machine, memory = rcnvm_machine()
        # A column line then a crossing row line.
        trace = [
            isa.cload(col_addr(memory, 8, 16), size=64),
            isa.load(row_addr(memory, 10, 16), size=64),
        ]
        result = machine.run(trace)
        assert result.synonym_cycles > 0
        assert result.coherence_overhead_ratio > 0

    def test_memory_accesses_include_writebacks(self):
        machine, memory = rcnvm_machine()
        # Dirty a line, then push it out of the tiny LLC with reads.
        trace = [isa.store(row_addr(memory, 0), size=64)]
        trace += [isa.load(row_addr(memory, i), size=64) for i in range(1, 200)]
        result = machine.run(trace)
        assert result.writebacks > 0
        assert result.memory_accesses == result.llc_misses + result.writebacks

    def test_result_has_cache_snapshots(self):
        machine, memory = rcnvm_machine()
        result = machine.run([isa.load(row_addr(memory, 0), size=64)])
        assert set(result.caches) == {"L1", "L2", "L3"}
        assert result.synonym  # RC-NVM machine carries synonym stats
