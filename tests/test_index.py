"""Hash index: structure, probing, planner integration."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from conftest import make_database, simple_rows
from repro.errors import LayoutError, SqlError
from repro.imdb.index import HashIndex


def indexed_db(system="RC-NVM", n=600, value_range=50):
    db = make_database(system, verify=True)
    layout = "column" if db.memory.supports_column else "row"
    db.create_table("t", [("k", 8), ("v", 8), ("w", 8)], layout=layout)
    db.insert_many("t", simple_rows(n, 3, seed=5, value_range=value_range))
    db.create_index("t", "k")
    return db


class TestStructure:
    def test_capacity_keeps_load_factor(self):
        db = indexed_db(n=600)
        index = db.table("t").indexes["k"]
        assert index.capacity >= 2 * 600
        assert index.capacity & (index.capacity - 1) == 0

    def test_duplicate_index_rejected(self):
        db = indexed_db()
        with pytest.raises(LayoutError):
            db.create_index("t", "k")

    def test_wide_field_rejected(self):
        db = make_database("RC-NVM", verify=False)
        db.create_table("w", [("a", 8), ("wide", 16)], layout="column")
        db.insert_many("w", [(1, (2, 3))])
        with pytest.raises(LayoutError):
            db.create_index("w", "wide")

    def test_drop_index(self):
        db = indexed_db()
        db.drop_index("t", "k")
        assert "k" not in db.table("t").indexes


class TestProbing:
    def test_probe_matches_scan(self):
        db = indexed_db()
        table = db.table("t")
        index = table.indexes["k"]
        values = table.field_values("k")
        for key in (0, 7, 23, 49, 1000, -3):
            expected = sorted(int(i) for i in np.nonzero(values == key)[0])
            assert sorted(index.probe(key)) == expected

    def test_probe_emits_traced_accesses(self):
        db = indexed_db()
        index = db.table("t").indexes["k"]
        trace = []
        index.probe(7, trace=trace, executor=db.executor)
        assert trace  # at least one slot read
        assert all(not a.is_write for a in trace)

    @given(seed=st.integers(0, 50))
    @settings(max_examples=20, deadline=None)
    def test_probe_property(self, seed):
        db = make_database("RC-NVM", verify=False)
        db.create_table("p", [("k", 8)], layout="column")
        rng = np.random.default_rng(seed)
        values = rng.integers(-10, 10, size=200)
        db.insert_many("p", [(int(v),) for v in values])
        index = db.create_index("p", "k")
        for key in range(-10, 10):
            expected = sorted(int(i) for i in np.nonzero(values == key)[0])
            assert sorted(index.probe(key)) == expected


class TestPlannerIntegration:
    def test_equality_select_uses_index(self):
        db = indexed_db()
        plan = db.plan("SELECT v, w FROM t WHERE k = 7")
        assert plan.use_index

    def test_inequality_does_not(self):
        db = indexed_db()
        plan = db.plan("SELECT v, w FROM t WHERE k > 7")
        assert not plan.use_index

    def test_conjunction_does_not(self):
        db = indexed_db()
        plan = db.plan("SELECT v FROM t WHERE k = 7 AND v > 3")
        assert not plan.use_index

    def test_unindexed_field_does_not(self):
        db = indexed_db()
        plan = db.plan("SELECT v FROM t WHERE v = 7")
        assert not plan.use_index

    def test_update_predicate_uses_index(self):
        db = indexed_db()
        plan = db.plan("UPDATE t SET v = 1 WHERE k = 7")
        assert plan.use_index

    def test_update_of_indexed_field_rejected(self):
        db = indexed_db()
        with pytest.raises(SqlError):
            db.plan("UPDATE t SET k = 1 WHERE v = 7")

    def test_star_equality_fetches_rows_via_index(self):
        from repro.imdb.planner import FetchMethod

        db = indexed_db(value_range=3)  # high selectivity per key
        plan = db.plan("SELECT * FROM t WHERE k = 1")
        assert plan.use_index
        assert plan.fetch_method is FetchMethod.ROW


class TestEndToEnd:
    @pytest.mark.parametrize("system", ["RC-NVM", "DRAM"])
    def test_results_still_match_reference(self, system):
        db = indexed_db(system)
        for sql in (
            "SELECT v, w FROM t WHERE k = 7",
            "SELECT * FROM t WHERE k = 23",
            "SELECT SUM(v) FROM t WHERE k = 7",
            "UPDATE t SET v = 99 WHERE k = 7",
        ):
            db.execute(sql, simulate=False)  # verify=True raises on mismatch

    def test_index_cuts_point_query_traffic(self):
        db = indexed_db(n=600, value_range=600)
        with_index = db.execute("SELECT v, w FROM t WHERE k = 7")
        db.drop_index("t", "k")
        without_index = db.execute("SELECT v, w FROM t WHERE k = 7")
        assert with_index.timing.llc_misses < without_index.timing.llc_misses / 4
        assert with_index.cycles < without_index.cycles
