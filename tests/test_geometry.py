"""Geometry: bit widths, derived sizes, validation."""

import pytest

from repro.errors import ConfigurationError
from repro.geometry import (
    DRAM_GEOMETRY,
    Geometry,
    RCNVM_GEOMETRY,
    SMALL_DRAM_GEOMETRY,
    SMALL_RCNVM_GEOMETRY,
    WORD_BYTES,
    WORDS_PER_LINE,
)


class TestConstants:
    def test_word_is_8_bytes(self):
        assert WORD_BYTES == 8

    def test_eight_words_per_line(self):
        assert WORDS_PER_LINE == 8


class TestTable1Geometries:
    def test_rcnvm_is_4gb(self):
        assert RCNVM_GEOMETRY.total_bytes == 4 << 30

    def test_dram_is_4gb(self):
        assert DRAM_GEOMETRY.total_bytes == 4 << 30

    def test_rcnvm_row_buffer_is_8kb(self):
        assert RCNVM_GEOMETRY.row_buffer_bytes == 8192

    def test_rcnvm_column_buffer_is_8kb(self):
        assert RCNVM_GEOMETRY.column_buffer_bytes == 8192

    def test_dram_row_buffer_is_2kb(self):
        assert DRAM_GEOMETRY.row_buffer_bytes == 2048

    def test_rcnvm_subarray_is_8mb(self):
        # Section 4.5.1: "a subarray of RC-NVM (i.e. 8 MB in this work)"
        assert RCNVM_GEOMETRY.subarray_bytes == 8 << 20

    def test_rcnvm_address_is_32_bits(self):
        # Figure 7 uses a 32-bit address for the 4 GB system.
        assert RCNVM_GEOMETRY.address_bits == 32

    def test_dram_address_is_32_bits(self):
        assert DRAM_GEOMETRY.address_bits == 32

    def test_figure7_field_widths(self):
        g = RCNVM_GEOMETRY
        assert (g.channel_bits, g.rank_bits, g.bank_bits) == (1, 2, 3)
        assert (g.subarray_bits, g.row_bits, g.col_bits, g.offset_bits) == (3, 10, 10, 3)

    def test_total_banks(self):
        assert RCNVM_GEOMETRY.total_banks == 2 * 4 * 8

    def test_total_subarrays(self):
        assert RCNVM_GEOMETRY.total_subarrays == 2 * 4 * 8 * 8


class TestSmallGeometries:
    def test_small_sizes_match(self):
        assert SMALL_RCNVM_GEOMETRY.total_bytes == SMALL_DRAM_GEOMETRY.total_bytes

    def test_small_rcnvm_square_enough(self):
        g = SMALL_RCNVM_GEOMETRY
        assert g.rows >= 64 and g.cols >= 64


class TestValidation:
    @pytest.mark.parametrize("field", ["channels", "ranks", "banks", "subarrays", "rows", "cols"])
    def test_non_power_of_two_rejected(self, field):
        kwargs = dict(channels=1, ranks=1, banks=2, subarrays=1, rows=16, cols=16)
        kwargs[field] = 3
        with pytest.raises(ConfigurationError):
            Geometry(**kwargs)

    @pytest.mark.parametrize("value", [0, -4])
    def test_non_positive_rejected(self, value):
        with pytest.raises(ConfigurationError):
            Geometry(rows=value)

    def test_derived_bytes_consistent(self):
        g = Geometry(channels=2, ranks=1, banks=2, subarrays=2, rows=32, cols=16)
        assert g.subarray_bytes == 32 * 16 * 8
        assert g.bank_bytes == 2 * g.subarray_bytes
        assert g.total_bytes == 2 * 1 * 2 * g.bank_bytes
        assert g.total_bytes == 1 << g.address_bits
