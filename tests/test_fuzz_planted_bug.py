"""Sensitivity check: the fuzzer must catch a deliberately planted bug.

A LIMIT off-by-one is planted into ``Executor._order_and_limit``
(silently dropping the last row whenever a LIMIT is hit).  The
differential loop has to (a) notice within a bounded seed-0 run,
(b) shrink the failure to a tiny repro (the ISSUE's bar: at most three
predicate clauses), and (c) flag the committed fixture
``tests/corpus/planted-limit-off-by-one.json`` — which in turn must
pass on clean code (the corpus replay test covers that half).
"""

import pathlib

import pytest

from repro.fuzz import run_case, run_fuzz
from repro.fuzz.runner import load_case
from repro.fuzz.shrink import clause_count
from repro.imdb.executor import Executor

FIXTURE = (
    pathlib.Path(__file__).parent / "corpus" / "planted-limit-off-by-one.json"
)
FAST_KEYS = ["dram-row", "rcnvm-col"]


@pytest.fixture
def planted_limit_bug(monkeypatch):
    original = Executor._order_and_limit

    def buggy(self, table, plan, rows):
        result = original(self, table, plan, rows)
        limit = getattr(plan, "limit", None)
        if (
            limit is not None
            and result.kind == "rows"
            and len(result.rows) == limit
        ):
            result.rows = result.rows[:-1]
        return result

    monkeypatch.setattr(Executor, "_order_and_limit", buggy)


def test_fuzzer_catches_and_shrinks_the_planted_bug(planted_limit_bug):
    report = run_fuzz(
        seed=0, iterations=40, config_keys=FAST_KEYS, max_failures=1
    )
    assert not report.ok, "planted LIMIT off-by-one went undetected"
    failure = report.failures[0]
    assert failure.problems
    # The shrinker must reduce the repro to the ISSUE's bar.
    assert clause_count(failure.case) <= 3
    assert len(failure.case.statements) == 1
    assert failure.case.statements[0].get("limit") is not None


def test_committed_fixture_fails_under_the_bug(planted_limit_bug):
    case = load_case(FIXTURE)
    problems = run_case(case, configs=None)  # full config lattice
    assert problems, "fixture no longer reproduces the planted bug"
    assert clause_count(case) <= 3


def test_committed_fixture_passes_on_clean_code():
    # Redundant with the corpus replay, but kept next to its bug-side
    # twin so the pairing is obvious.
    assert run_case(load_case(FIXTURE)) == []
