"""Online 2-D bin packing with rotation: bounds, overlap, utilization."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import LayoutError
from repro.imdb.binpack import OnlineBinPacker


def rects_overlap(a, b):
    ax, ay, aw, ah = a
    bx, by, bw, bh = b
    return ax < bx + bw and bx < ax + aw and ay < by + bh and by < ay + ah


class TestBasics:
    def test_single_placement_at_origin(self):
        packer = OnlineBinPacker(100, 100)
        p = packer.place(30, 20)
        assert (p.bin_index, p.x, p.y) == (0, 0, 0)
        assert (p.width, p.height) == (30, 20)

    def test_shelf_fills_horizontally(self):
        packer = OnlineBinPacker(100, 100)
        first = packer.place(30, 20)
        second = packer.place(30, 20)
        assert second.bin_index == first.bin_index
        assert second.y == first.y
        assert second.x == first.x + 30

    def test_new_shelf_when_row_full(self):
        packer = OnlineBinPacker(100, 100, allow_rotation=False)
        for _ in range(3):
            packer.place(40, 20)
        # Fourth 40-wide rect cannot fit the 100-wide shelf.
        fourth = packer.place(40, 20)
        assert fourth.y == 20

    def test_new_bin_when_full(self):
        packer = OnlineBinPacker(40, 40, allow_rotation=False)
        packer.place(40, 40)
        p = packer.place(40, 40)
        assert p.bin_index == 1
        assert packer.bins_used == 2

    def test_oversized_rejected(self):
        packer = OnlineBinPacker(10, 10)
        with pytest.raises(LayoutError):
            packer.place(11, 11)

    def test_zero_rejected(self):
        packer = OnlineBinPacker(10, 10)
        with pytest.raises(LayoutError):
            packer.place(0, 5)


class TestRotation:
    def test_rotation_enables_fit(self):
        packer = OnlineBinPacker(20, 10)
        p = packer.place(5, 20)  # taller than the bin; must rotate
        assert p.rotated
        assert (p.width, p.height) == (20, 5)

    def test_rotation_disabled(self):
        packer = OnlineBinPacker(20, 10, allow_rotation=False)
        with pytest.raises(LayoutError):
            packer.place(5, 20)

    def test_rotation_reuses_shelf(self):
        packer = OnlineBinPacker(100, 30)
        packer.place(40, 10)  # shelf of height 10
        p = packer.place(10, 40)  # fits that shelf only if rotated
        assert p.rotated and p.y == 0

    def test_square_not_rotated(self):
        packer = OnlineBinPacker(50, 50)
        assert not packer.place(10, 10).rotated


class TestInvariants:
    @given(
        rects=st.lists(
            st.tuples(st.integers(1, 40), st.integers(1, 40)), min_size=1, max_size=40
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_no_overlap_and_in_bounds(self, rects):
        packer = OnlineBinPacker(64, 64)
        placed = {}
        for w, h in rects:
            p = packer.place(w, h)
            assert 0 <= p.x and p.x + p.width <= 64
            assert 0 <= p.y and p.y + p.height <= 64
            assert {p.width, p.height} == {w, h}  # rotation preserves dims
            rect = (p.x, p.y, p.width, p.height)
            for other in placed.get(p.bin_index, []):
                assert not rects_overlap(rect, other)
            placed.setdefault(p.bin_index, []).append(rect)

    @given(
        rects=st.lists(
            st.tuples(st.integers(1, 32), st.integers(1, 32)), min_size=5, max_size=30
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_area_conservation(self, rects):
        packer = OnlineBinPacker(64, 64)
        total = 0
        for w, h in rects:
            packer.place(w, h)
            total += w * h
        assert packer.utilization() == pytest.approx(
            total / (packer.bins_used * 64 * 64)
        )

    def test_utilization_empty(self):
        assert OnlineBinPacker(10, 10).utilization() == 0.0

    def test_uniform_rects_pack_tightly(self):
        packer = OnlineBinPacker(64, 64)
        for _ in range(16):
            packer.place(16, 16)
        assert packer.bins_used == 1
        assert packer.utilization() == 1.0
