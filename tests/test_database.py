"""Database facade: schema management, execution, timing lifecycle."""

import pytest

from conftest import SMALL_CACHES, make_database, simple_rows
from repro.errors import LayoutError, SqlError
from repro.imdb.chunks import IntraLayout


class TestSchemaManagement:
    def test_create_table_by_string_layout(self, rcnvm_db):
        table = rcnvm_db.create_table("t", [("a", 8)], layout="column")
        assert table.layout is IntraLayout.COLUMN

    def test_duplicate_table_rejected(self, rcnvm_db):
        rcnvm_db.create_table("t", [("a", 8)])
        with pytest.raises(LayoutError):
            rcnvm_db.create_table("t", [("a", 8)])

    def test_unknown_table(self, rcnvm_db):
        with pytest.raises(SqlError):
            rcnvm_db.table("missing")

    def test_drop_table(self, rcnvm_db):
        rcnvm_db.create_table("t", [("a", 8)])
        rcnvm_db.drop_table("t")
        with pytest.raises(SqlError):
            rcnvm_db.table("t")


class TestExecution:
    def make_loaded(self, system="RC-NVM"):
        db = make_database(system)
        layout = "column" if db.memory.supports_column else "row"
        db.create_table("t", [("a", 8), ("b", 8)], layout=layout)
        db.insert_many("t", simple_rows(200, 2))
        return db

    def test_outcome_fields(self):
        db = self.make_loaded()
        outcome = db.execute("SELECT SUM(b) FROM t WHERE a > 500")
        assert outcome.cycles and outcome.cycles > 0
        assert outcome.trace_length > 0
        assert outcome.plan is not None
        assert outcome.sql.startswith("SELECT")

    def test_simulate_false_skips_timing(self):
        db = self.make_loaded()
        outcome = db.execute("SELECT SUM(b) FROM t", simulate=False)
        assert outcome.timing is None and outcome.cycles is None

    def test_fresh_timing_resets_stats(self):
        db = self.make_loaded()
        db.execute("SELECT SUM(b) FROM t")
        outcome = db.execute("SELECT SUM(b) FROM t")
        # Cold caches each time: identical queries cost identical cycles.
        outcome2 = db.execute("SELECT SUM(b) FROM t")
        assert outcome.cycles == outcome2.cycles

    def test_warm_timing_accumulates(self):
        db = self.make_loaded()
        first = db.execute("SELECT SUM(b) FROM t")
        warm = db.execute("SELECT SUM(b) FROM t", fresh_timing=False)
        # Second run hits caches: fewer misses.
        assert warm.timing.llc_misses < first.timing.llc_misses

    def test_verify_flag_checks_results(self):
        db = self.make_loaded()
        outcome = db.execute("SELECT COUNT(a) FROM t WHERE a > 100", verify=True)
        assert outcome.result.kind == "scalar"

    def test_explain(self):
        db = self.make_loaded()
        text = db.explain("SELECT SUM(b) FROM t WHERE a > 500")
        assert "AggregatePlan" in text

    def test_group_lines_default(self):
        db = make_database("RC-NVM", default_group_lines=16)
        db.create_table("t", [("a", 8), ("b", 8), ("c", 8), ("d", 8)], layout="column")
        db.insert_many("t", simple_rows(64, 4))
        plan = db.plan("SELECT a, c FROM t")
        assert plan.group_lines == 16


class TestVerificationFailureDetection:
    def test_check_result_catches_bad_scalar(self):
        from repro.imdb.database import _check_result
        from repro.imdb.executor import QueryResult

        with pytest.raises(AssertionError):
            _check_result(
                "q",
                QueryResult(kind="scalar", value=1),
                QueryResult(kind="scalar", value=2),
            )

    def test_check_result_catches_kind_mismatch(self):
        from repro.imdb.database import _check_result
        from repro.imdb.executor import QueryResult

        with pytest.raises(AssertionError):
            _check_result(
                "q",
                QueryResult(kind="scalar", value=1),
                QueryResult(kind="count", count=1),
            )

    def test_check_result_rows_order_insensitive(self):
        from repro.imdb.database import _check_result
        from repro.imdb.executor import QueryResult

        _check_result(
            "q",
            QueryResult(kind="rows", rows=[(1,), (2,)]),
            QueryResult(kind="rows", rows=[(2,), (1,)]),
        )


class TestTimingLifecycle:
    def test_reset_builds_synonym_only_for_rcnvm(self):
        rc = make_database("RC-NVM")
        assert rc.hierarchy.synonym is not None
        dram = make_database("DRAM")
        assert dram.hierarchy.synonym is None

    def test_cache_config_respected(self):
        db = make_database("RC-NVM", cache_config=dict(SMALL_CACHES, l3_kib=256))
        assert db.hierarchy.llc.size_bytes == 256 * 1024

    def test_data_survives_reset(self):
        db = make_database("RC-NVM")
        db.create_table("t", [("a", 8)], layout="column")
        db.insert_many("t", [(7,)])
        db.reset_timing()
        assert db.table("t").read_tuple(0) == (7,)
