"""The equivalence oracle for the batched replay fast path.

``Machine.run`` takes either a ``List[Access]`` (the precise per-access
path) or a :class:`~repro.cpu.tracebuffer.TraceBuffer` (the batched
structure-of-arrays path).  The batched path is only a performance
optimization: on the same trace the two must produce *bit-for-bit*
identical :class:`RunResult`\\ s — every counter, every cache/memory
stats snapshot, every latency histogram bucket.  These tests enforce
that on the SQL benchmark suite (scale from ``REPRO_BENCH_SCALE``,
default 0.05) for every figure system, and on the multicore OLXP mix.
"""

import os

import pytest

from repro.harness.systems import build_system
from repro.workloads.queries import QUERIES
from repro.workloads.suite import build_benchmark_database

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.05"))
SYSTEMS = ("RC-NVM", "RRAM", "GS-DRAM", "DRAM")
#: A cross-section of the suite: row scans, column scans, gathers,
#: selective point lookups, and updates (writes + unpins).
QIDS = ("Q1", "Q3", "Q4", "Q6", "Q10", "Q12")


def _query_traces(db, qids=QIDS):
    for qid in qids:
        spec = QUERIES[qid]
        plan = db.plan(
            spec.sql, params=spec.params, selectivity_hint=spec.selectivity_hint
        )
        _result, buffer = db.executor.execute(plan)
        yield qid, buffer


@pytest.mark.parametrize("system_name", SYSTEMS)
def test_batched_replay_is_bit_for_bit(system_name):
    memory = build_system(system_name)
    db = build_benchmark_database(memory, scale=SCALE)
    for qid, buffer in _query_traces(db):
        accesses = list(buffer.to_accesses())
        db.reset_timing()
        precise = db.machine.run(accesses)
        db.reset_timing()
        batched = db.machine.run(buffer)
        assert precise == batched, (system_name, qid)


@pytest.mark.parametrize("system_name", SYSTEMS)
def test_kernel_replay_is_bit_for_bit(system_name):
    """The compiled replay kernel is mode three of the same oracle: for
    every suite query it must match the batched path (and thereby the
    precise path) bit for bit — including the simulator end state it
    leaves behind, which downstream reporting reads."""
    memory = build_system(system_name)
    db = build_benchmark_database(memory, scale=SCALE)
    for qid, buffer in _query_traces(db):
        db.reset_timing()
        db.machine.replay_mode = "batched"
        batched = db.machine.run(buffer)
        batched_state = _simulator_state(db)
        db.reset_timing()
        db.machine.replay_mode = "kernel"
        kernel = db.machine.run(buffer)
        kernel_state = _simulator_state(db)
        assert batched == kernel, (system_name, qid)
        assert batched_state == kernel_state, (system_name, qid)


def _simulator_state(db):
    """Everything a replay leaves behind: cache contents in LRU order,
    per-level stats, synonym counters, controller stats and bank state."""
    hierarchy = db.machine.hierarchy
    state = []
    for level in hierarchy.levels:
        state.append(level.stats.snapshot())
        state.append([list(cache_set.keys()) for cache_set in level.sets])
    state.append(list(hierarchy._counts))
    for ctrl in db.memory.controllers:
        state.append(ctrl.stats.snapshot())
        state.append(ctrl.bus_free)
        for bank in ctrl.banks:
            state.append((
                bank.open_kind, bank.open_subarray, bank.open_index,
                bank.open_entry, bank.ready_at, bank.activated_at,
                bank.accesses, bank.activations,
            ))
    return state


@pytest.mark.parametrize("system_name", ("RC-NVM", "DRAM"))
def test_multicore_batched_replay_is_bit_for_bit(system_name):
    from repro.cpu.multicore import MulticoreMachine
    from repro.harness.multicore import DEFAULT_CORE_MIX, build_core_traces

    memory = build_system(system_name)
    db = build_benchmark_database(memory, scale=SCALE)
    buffers = build_core_traces(db, DEFAULT_CORE_MIX)
    lists = [list(buffer.to_accesses()) for buffer in buffers]

    memory.reset()
    machine = MulticoreMachine(memory, n_cores=len(buffers))
    precise = machine.run(lists)

    memory.reset()
    machine = MulticoreMachine(memory, n_cores=len(buffers))
    batched = machine.run(buffers)

    assert precise == batched, system_name
