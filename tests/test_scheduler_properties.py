"""Property tests for the locality-aware channel scheduler.

Random request traces (seeded through hypothesis) are pushed through a
single channel controller under every scheduling/page-policy combination,
checking the invariants the rest of the stack relies on:

* every submitted request completes exactly once;
* completions are monotone on the shared bus (no two bursts overlap);
* plain FCFS never reorders (completions follow submission order);
* FR-FCFS never starves a request past the age cap.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.addressing import Orientation
from repro.geometry import SMALL_RCNVM_GEOMETRY
from repro.memsim.controller import ChannelController
from repro.memsim.request import MemRequest
from repro.memsim.timing import LPDDR3_800_RCNVM

POLICY_GRID = [
    (policy, page)
    for policy in ChannelController.POLICIES
    for page in ChannelController.PAGE_POLICIES
]


@st.composite
def request_traces(draw):
    """A list of (bank, row, col, orientation, is_write, arrival) tuples."""
    n = draw(st.integers(1, 60))
    trace = []
    arrival = 0
    for _ in range(n):
        arrival += draw(st.integers(0, 60))
        trace.append((
            draw(st.integers(0, 3)),
            draw(st.integers(0, 4)),
            draw(st.integers(0, 4)),
            draw(st.sampled_from([Orientation.ROW, Orientation.COLUMN,
                                  Orientation.GATHER])),
            draw(st.booleans()),
            arrival,
        ))
    return trace


def build_requests(trace):
    return [
        MemRequest(channel=0, rank=0, bank=bank, subarray=0, row=row, col=col,
                   orientation=orientation, is_write=is_write, arrival=arrival)
        for bank, row, col, orientation, is_write, arrival in trace
    ]


def run_trace(trace, policy, page_policy, age_cap=4, queue_depth=6):
    controller = ChannelController(
        SMALL_RCNVM_GEOMETRY, LPDDR3_800_RCNVM, supports_column=True,
        queue_depth=queue_depth, policy=policy, page_policy=page_policy,
        age_cap=age_cap, adaptive_threshold=2,
    )
    requests = build_requests(trace)
    for req in requests:
        controller.submit(req)
    controller.drain()
    return controller, requests


class TestSchedulerProperties:
    @pytest.mark.parametrize("policy,page_policy", POLICY_GRID)
    @given(trace=request_traces())
    @settings(max_examples=30, deadline=None)
    def test_every_request_completes_exactly_once(self, policy, page_policy,
                                                  trace):
        controller, requests = run_trace(trace, policy, page_policy)
        assert all(req.completion is not None for req in requests)
        assert not controller.pending
        # Exactly once: the controller serviced as many requests as were
        # submitted, and each burst got its own bus slot.
        assert controller.stats.accesses == len(requests)
        assert len({req.completion for req in requests}) == len(requests)

    @pytest.mark.parametrize("policy,page_policy", POLICY_GRID)
    @given(trace=request_traces())
    @settings(max_examples=30, deadline=None)
    def test_completions_monotone_on_shared_bus(self, policy, page_policy,
                                                trace):
        _, requests = run_trace(trace, policy, page_policy)
        completions = sorted(req.completion for req in requests)
        burst = LPDDR3_800_RCNVM.burst_cpu
        for a, b in zip(completions, completions[1:]):
            assert b - a >= burst

    @pytest.mark.parametrize("page_policy", ChannelController.PAGE_POLICIES)
    @given(trace=request_traces())
    @settings(max_examples=30, deadline=None)
    def test_fcfs_never_reorders(self, page_policy, trace):
        _, requests = run_trace(trace, "fcfs", page_policy)
        completions = [req.completion for req in requests]
        assert completions == sorted(completions)

    @pytest.mark.parametrize("page_policy", ChannelController.PAGE_POLICIES)
    @given(trace=request_traces(), age_cap=st.integers(1, 6))
    @settings(max_examples=30, deadline=None)
    def test_frfcfs_never_starves_past_age_cap(self, page_policy, trace,
                                               age_cap):
        controller, _ = run_trace(trace, "frfcfs", page_policy,
                                  age_cap=age_cap)
        assert controller.stats.max_bypass <= age_cap

    @pytest.mark.parametrize("policy,page_policy", POLICY_GRID)
    @given(trace=request_traces())
    @settings(max_examples=15, deadline=None)
    def test_scheduling_is_deterministic(self, policy, page_policy, trace):
        _, first = run_trace(trace, policy, page_policy)
        _, second = run_trace(trace, policy, page_policy)
        assert ([r.completion for r in first]
                == [r.completion for r in second])

    @pytest.mark.parametrize("policy,page_policy", POLICY_GRID)
    @given(trace=request_traces())
    @settings(max_examples=15, deadline=None)
    def test_closed_loop_agrees_on_request_count(self, policy, page_policy,
                                                 trace):
        """Resolving every completion eagerly must also service everything
        exactly once (the cpu.machine access pattern)."""
        controller = ChannelController(
            SMALL_RCNVM_GEOMETRY, LPDDR3_800_RCNVM, supports_column=True,
            queue_depth=6, policy=policy, page_policy=page_policy,
            age_cap=4, adaptive_threshold=2,
        )
        requests = build_requests(trace)
        for req in requests:
            controller.submit(req)
            controller.completion_of(req)
        assert controller.stats.accesses == len(requests)
        assert not controller.pending
