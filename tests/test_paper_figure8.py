"""The paper's Figure 8 worked example, verbatim.

Figure 8 states that one 8-byte datum at physical location (row 437,
col 182) carries the row-oriented address 0x0036a5b0 and the
column-oriented address 0x0016cda8.  Our Figure 7 address layout must
reproduce those exact numbers — a strong end-to-end check of the bit
packing — and the cache/synonym machinery must then behave as the
figure describes when both lines are resident.
"""

from repro.cache.cache import Cache
from repro.cache.hierarchy import CacheHierarchy
from repro.cache.line import line_key
from repro.cache.synonym import SynonymDirectory
from repro.core.addressing import AddressMapper, Coordinate, Orientation
from repro.geometry import RCNVM_GEOMETRY

ROW_ADDRESS = 0x0036A5B0
COL_ADDRESS = 0x0016CDA8
LOCATION = Coordinate(channel=0, rank=0, bank=0, subarray=0, row=437, col=182)


class TestFigure8Addresses:
    def test_row_oriented_address(self):
        mapper = AddressMapper(RCNVM_GEOMETRY)
        assert mapper.encode_row(LOCATION) == ROW_ADDRESS

    def test_column_oriented_address(self):
        mapper = AddressMapper(RCNVM_GEOMETRY)
        assert mapper.encode_col(LOCATION) == COL_ADDRESS

    def test_conversion_between_the_two(self):
        mapper = AddressMapper(RCNVM_GEOMETRY)
        assert mapper.row_to_col_address(ROW_ADDRESS) == COL_ADDRESS
        assert mapper.col_to_row_address(COL_ADDRESS) == ROW_ADDRESS

    def test_decode_both_to_row_437_col_182(self):
        mapper = AddressMapper(RCNVM_GEOMETRY)
        row_coord = mapper.decode_row(ROW_ADDRESS)
        col_coord = mapper.decode_col(COL_ADDRESS)
        assert (row_coord.row, row_coord.col) == (437, 182)
        assert row_coord == col_coord


class TestFigure8CacheBehaviour:
    """Loading the datum under both addresses creates the synonym the
    figure illustrates; the crossing bits must mark exactly the shared
    word."""

    def make_hierarchy(self):
        mapper = AddressMapper(RCNVM_GEOMETRY)
        synonym = SynonymDirectory(mapper)
        # The figure's cache: 64 KB, 4-way, 64-byte blocks.
        hierarchy = CacheHierarchy(
            [Cache("L1", 64 * 1024, 4, hit_latency=4)], synonym=synonym
        )
        return mapper, synonym, hierarchy

    def test_two_lines_one_crossing_word(self):
        mapper, synonym, hierarchy = self.make_hierarchy()
        row_key = line_key(ROW_ADDRESS, Orientation.ROW)
        col_key = line_key(COL_ADDRESS, Orientation.COLUMN)
        hierarchy.fill(col_key, False)
        hierarchy.fill(row_key, False)
        row_line = hierarchy.llc.probe(row_key)
        col_line = hierarchy.llc.probe(col_key)
        # The row line covers cols 176..183 of row 437: the shared word
        # (col 182) is its word 6.  The column line covers rows 432..439
        # of col 182: the shared word (row 437) is its word 5.
        assert row_line.crossing == 1 << 6
        assert col_line.crossing == 1 << 5
        assert synonym.stats.crossing_copies == 1

    def test_write_to_shared_word_updates_duplicate(self):
        mapper, synonym, hierarchy = self.make_hierarchy()
        row_key = line_key(ROW_ADDRESS, Orientation.ROW)
        col_key = line_key(COL_ADDRESS, Orientation.COLUMN)
        hierarchy.fill(col_key, False)
        hierarchy.fill(row_key, False)
        _level, extra = hierarchy.lookup(row_key, True, word_mask=1 << 6)
        assert extra == synonym.WRITE_UPDATE_COST
        assert synonym.stats.write_updates == 1

    def test_write_to_other_words_is_free(self):
        mapper, synonym, hierarchy = self.make_hierarchy()
        row_key = line_key(ROW_ADDRESS, Orientation.ROW)
        col_key = line_key(COL_ADDRESS, Orientation.COLUMN)
        hierarchy.fill(col_key, False)
        hierarchy.fill(row_key, False)
        _level, extra = hierarchy.lookup(row_key, True, word_mask=0xFF ^ (1 << 6))
        assert extra == 0
