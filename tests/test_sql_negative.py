"""Negative-path tests for the SQL front end.

Malformed SQL — lexer garbage, parser dead-ends, unknown names — must
surface as :class:`SqlError` carrying a character position where one
exists, never as a raw Python exception (AssertionError, ValueError,
AttributeError, KeyError, ...) leaking out of ``db.execute``.
"""

import re

import pytest
from conftest import make_database

from repro.errors import SqlError
from repro.imdb.sql_lexer import tokenize
from repro.imdb.sql_parser import parse

try:
    from hypothesis import given
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover
    HAVE_HYPOTHESIS = False


POSITIONED = re.compile(r"at \d+")


# Statements that must fail in the lexer or parser, before any table
# lookup; every message must carry a character position.
PARSE_REJECTS = [
    "SELECT f1 FROM t WHERE f1 == 3",       # '==' lexes as '=' '=' -> parse error
    "SELECT f1 FROM t WHERE name = 'oops",  # unterminated string
    'SELECT f1 FROM t WHERE name = "x"',    # strings unsupported
    "SELECT f1 FROM t WHERE f1 = $3",       # unexpected character
    "DELETE FROM t",                        # unsupported verb
    "SELECT FROM t",                        # missing select list
    "SELECT f1 t",                          # missing FROM
    "SELECT f1 FROM t LIMIT -1",            # negative LIMIT
    "SELECT f1 FROM t LIMIT f1",            # non-numeric LIMIT
    "SELECT f1 FROM t ORDER BY",            # dangling ORDER BY
    "SELECT f1 FROM t ORDER f1",            # ORDER without BY
    "SELECT SUM(f1 FROM t",                 # unclosed aggregate paren
    "SELECT SUM() FROM t",                  # empty aggregate
    "UPDATE t SET f1 > 3",                  # assignment must use '='
    "UPDATE t SET WHERE f1 = 1",            # missing assignment
    "SELECT f1, FROM t",                    # trailing comma
    "SELECT f1 FROM t WHERE",               # dangling WHERE
    "SELECT f1 FROM t WHERE f1 <",          # dangling comparison
    "SELECT f1 FROM t extra",               # trailing tokens past statement
    "",                                     # empty statement
]


@pytest.mark.parametrize("sql", PARSE_REJECTS)
def test_malformed_sql_raises_positioned_sqlerror(sql):
    with pytest.raises(SqlError) as excinfo:
        parse(sql)
    assert POSITIONED.search(str(excinfo.value)), (
        f"SqlError for {sql!r} lacks a character position: {excinfo.value}"
    )


def test_lexer_reports_unterminated_vs_unsupported_strings():
    with pytest.raises(SqlError, match="unterminated string starting at 4"):
        tokenize("a = 'oops")
    with pytest.raises(SqlError, match="not supported"):
        tokenize("a = 'oops'")


def test_lexer_normalizes_diamond_operator():
    kinds = [(t.kind, t.text) for t in tokenize("a <> 3")]
    assert ("OP", "!=") in kinds


# Statements that parse but must be rejected with SqlError by the
# planner / database layer (still never a raw Python exception).
SEMANTIC_REJECTS = [
    "SELECT nope FROM ta",                       # unknown column in select
    "SELECT f1 FROM missing",                    # unknown table
    "SELECT SUM(nope) FROM ta",                  # unknown aggregate column
    "SELECT f1 FROM ta WHERE nope = 1",          # unknown column in WHERE
    "SELECT f1 FROM ta ORDER BY f2",             # ORDER BY not projected
    "SELECT f1 FROM ta ORDER BY nope",           # ORDER BY unknown column
    "UPDATE ta SET nope = 1",                    # unknown column in SET
    "SELECT f1 FROM ta WHERE f1 = f2",           # column-vs-column predicate
    "SELECT ta.f1, tb.f1 FROM ta, tb",           # join without equality key
    "SELECT tc.f1 FROM ta, tb WHERE ta.f1 = tb.f1",  # output names third table
    "SELECT ta.f1 FROM ta, tb WHERE ta.f1 = tb.f1 ORDER BY f1 LIMIT 2",
]


@pytest.fixture(scope="module")
def two_table_db():
    db = make_database("RC-NVM", verify=False)
    for name in ("ta", "tb"):
        db.create_table(name, [("f1", 8), ("f2", 8)])
        db.insert_many(name, [(1, 10), (2, 20), (3, 30)])
    return db


@pytest.mark.parametrize("sql", SEMANTIC_REJECTS)
def test_semantic_errors_are_sqlerrors(two_table_db, sql):
    with pytest.raises(SqlError):
        two_table_db.execute(sql)


def test_unknown_column_message_names_column_and_table(two_table_db):
    with pytest.raises(SqlError, match=r"unknown column 'nope'.*'ta'"):
        two_table_db.execute("SELECT nope FROM ta")


if HAVE_HYPOTHESIS:

    @given(st.text(min_size=1, max_size=60))
    def test_parser_never_raises_non_sqlerror(sql):
        """Arbitrary text either parses or raises SqlError — nothing else."""
        try:
            parse(sql)
        except SqlError:
            pass

    _token = st.sampled_from(
        "SELECT FROM WHERE AND UPDATE SET ORDER BY LIMIT SUM ( ) , . * "
        "= < > <= >= != f1 f2 ta tb 3 -7 ' \"".split()
    )

    @given(st.lists(_token, min_size=1, max_size=12))
    def test_token_soup_never_raises_non_sqlerror(tokens):
        """Well-lexed but structurally random statements stay in SqlError."""
        try:
            parse(" ".join(tokens))
        except SqlError:
            pass
