"""Ordered (sorted-projection) index: probes, ranges, planner use."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from conftest import make_database, simple_rows
from repro.errors import SqlError
from repro.imdb.planner import _compare


def indexed_db(system="RC-NVM", n=800, value_range=1000):
    db = make_database(system, verify=True)
    layout = "column" if db.memory.supports_column else "row"
    db.create_table("t", [("k", 8), ("v", 8), ("w", 8)], layout=layout)
    db.insert_many("t", simple_rows(n, 3, seed=21, value_range=value_range))
    db.create_ordered_index("t", "k")
    return db


class TestProbing:
    @pytest.mark.parametrize("op", [">", "<", ">=", "<=", "="])
    def test_range_probe_matches_mask(self, op):
        db = indexed_db()
        table = db.table("t")
        index = table.ordered_indexes["k"]
        values = table.field_values("k")
        for threshold in (0, 113, 500, 999, 2000):
            expected = sorted(int(i) for i in np.nonzero(
                _compare(values, op, threshold))[0])
            assert sorted(index.range_probe(op, threshold)) == expected, (op, threshold)

    def test_probe_emits_log_plus_range_accesses(self):
        db = indexed_db(n=800)
        index = db.table("t").ordered_indexes["k"]
        trace = []
        ids = index.range_probe(">", 950, trace=trace, executor=db.executor)
        # Binary search ~log2(800) probes plus a compact range read.
        assert len(trace) <= 14 + len(ids) // 2 + 4

    def test_duplicates_all_found(self):
        db = make_database("RC-NVM", verify=False)
        db.create_table("d", [("k", 8)], layout="column")
        db.insert_many("d", [(5,)] * 20 + [(7,)] * 3)
        index = db.create_ordered_index("d", "k")
        assert len(index.range_probe("=", 5)) == 20
        assert len(index.range_probe(">", 5)) == 3

    def test_empty_results(self):
        db = indexed_db()
        index = db.table("t").ordered_indexes["k"]
        assert index.range_probe(">", 10_000) == []
        assert index.range_probe("<", -10_000) == []

    @given(seed=st.integers(0, 30), threshold=st.integers(-5, 25))
    @settings(max_examples=25, deadline=None)
    def test_probe_property(self, seed, threshold):
        db = make_database("RC-NVM", verify=False)
        db.create_table("p", [("k", 8)], layout="column")
        rng = np.random.default_rng(seed)
        values = rng.integers(-10, 20, size=150)
        db.insert_many("p", [(int(v),) for v in values])
        index = db.create_ordered_index("p", "k")
        expected = sorted(int(i) for i in np.nonzero(values >= threshold)[0])
        assert sorted(index.range_probe(">=", threshold)) == expected


class TestPlannerIntegration:
    def test_selective_range_uses_ordered_index(self):
        db = indexed_db()
        plan = db.plan("SELECT v, w FROM t WHERE k > 950")
        assert plan.use_ordered_index and not plan.use_index

    def test_unselective_range_scans(self):
        db = indexed_db()
        plan = db.plan("SELECT v, w FROM t WHERE k > 100")
        assert not plan.use_ordered_index

    def test_hash_index_preferred_for_equality(self):
        db = indexed_db()
        db.create_index("t", "k")
        plan = db.plan("SELECT v FROM t WHERE k = 7")
        assert plan.use_index and not plan.use_ordered_index

    def test_equality_falls_back_to_ordered(self):
        db = indexed_db(value_range=100_000)  # near-unique keys
        plan = db.plan("SELECT v FROM t WHERE k = 7")
        assert plan.use_ordered_index

    def test_update_of_ordered_indexed_field_rejected(self):
        db = indexed_db()
        with pytest.raises(SqlError):
            db.plan("UPDATE t SET k = 1 WHERE v = 7")

    def test_update_predicate_can_use_ordered_index(self):
        db = indexed_db()
        plan = db.plan("UPDATE t SET v = 1 WHERE k > 990")
        assert plan.use_ordered_index


class TestEndToEnd:
    @pytest.mark.parametrize("system", ["RC-NVM", "DRAM"])
    def test_results_match_reference(self, system):
        db = indexed_db(system)
        for sql in (
            "SELECT v, w FROM t WHERE k > 950",
            "SELECT * FROM t WHERE k <= 20",
            "SELECT SUM(v) FROM t WHERE k >= 980",
            "UPDATE t SET v = 5 WHERE k < 10",
        ):
            db.execute(sql, simulate=False)  # verify=True checks results

    def test_ordered_index_cuts_traffic(self):
        db = indexed_db(n=2000)
        indexed = db.execute("SELECT v, w FROM t WHERE k > 990")
        db.drop_ordered_index("t", "k")
        scanned = db.execute("SELECT v, w FROM t WHERE k > 990")
        assert indexed.timing.llc_misses < scanned.timing.llc_misses
        assert indexed.cycles < scanned.cycles

    def test_duplicate_creation_rejected(self):
        from repro.errors import LayoutError

        db = indexed_db()
        with pytest.raises(LayoutError):
            db.create_ordered_index("t", "k")
