"""Dual addressing: encode/decode, conversion, the Figure 7 permutation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.addressing import AddressMapper, Coordinate, Orientation
from repro.errors import AddressError
from repro.geometry import Geometry, RCNVM_GEOMETRY, SMALL_RCNVM_GEOMETRY


@pytest.fixture(scope="module")
def mapper():
    return AddressMapper(RCNVM_GEOMETRY)


def coordinates(geometry):
    return st.builds(
        Coordinate,
        channel=st.integers(0, geometry.channels - 1),
        rank=st.integers(0, geometry.ranks - 1),
        bank=st.integers(0, geometry.banks - 1),
        subarray=st.integers(0, geometry.subarrays - 1),
        row=st.integers(0, geometry.rows - 1),
        col=st.integers(0, geometry.cols - 1),
        offset=st.integers(0, 7),
    )


class TestEncodeDecode:
    def test_zero_coordinate(self, mapper):
        coord = Coordinate(0, 0, 0, 0, 0, 0, 0)
        assert mapper.encode_row(coord) == 0
        assert mapper.encode_col(coord) == 0

    def test_row_address_increments_along_row(self, mapper):
        base = Coordinate(0, 0, 0, 0, row=5, col=7)
        nxt = Coordinate(0, 0, 0, 0, row=5, col=8)
        assert mapper.encode_row(nxt) - mapper.encode_row(base) == 8

    def test_col_address_increments_down_column(self, mapper):
        base = Coordinate(0, 0, 0, 0, row=5, col=7)
        nxt = Coordinate(0, 0, 0, 0, row=6, col=7)
        assert mapper.encode_col(nxt) - mapper.encode_col(base) == 8

    def test_row_crossing_to_next_row(self, mapper):
        g = mapper.geometry
        end = Coordinate(0, 0, 0, 0, row=0, col=g.cols - 1, offset=7)
        start = Coordinate(0, 0, 0, 0, row=1, col=0, offset=0)
        assert mapper.encode_row(end) + 1 == mapper.encode_row(start)

    @given(coord=coordinates(RCNVM_GEOMETRY))
    @settings(max_examples=200)
    def test_row_roundtrip(self, mapper, coord):
        assert mapper.decode_row(mapper.encode_row(coord)) == coord

    @given(coord=coordinates(RCNVM_GEOMETRY))
    @settings(max_examples=200)
    def test_col_roundtrip(self, mapper, coord):
        assert mapper.decode_col(mapper.encode_col(coord)) == coord

    @given(coord=coordinates(RCNVM_GEOMETRY))
    @settings(max_examples=200)
    def test_same_location_two_addresses(self, mapper, coord):
        """Both address spaces point at the same physical byte."""
        row_addr = mapper.encode_row(coord)
        col_addr = mapper.encode_col(coord)
        assert mapper.physical_index(mapper.decode_row(row_addr)) == \
            mapper.physical_index(mapper.decode_col(col_addr))


class TestConversion:
    @given(coord=coordinates(RCNVM_GEOMETRY))
    @settings(max_examples=200)
    def test_row_to_col_matches_encode(self, mapper, coord):
        assert mapper.row_to_col_address(mapper.encode_row(coord)) == \
            mapper.encode_col(coord)

    @given(coord=coordinates(RCNVM_GEOMETRY))
    @settings(max_examples=200)
    def test_conversion_is_involution(self, mapper, coord):
        addr = mapper.encode_row(coord)
        assert mapper.col_to_row_address(mapper.row_to_col_address(addr)) == addr

    def test_to_orientation_identity(self, mapper):
        assert mapper.to_orientation(1234 * 8, Orientation.ROW, Orientation.ROW) == 1234 * 8

    def test_to_orientation_row_col(self, mapper):
        coord = Coordinate(1, 2, 3, 4, 100, 200, 4)
        addr = mapper.encode_row(coord)
        assert (
            mapper.to_orientation(addr, Orientation.ROW, Orientation.COLUMN)
            == mapper.encode_col(coord)
        )

    def test_gather_conversion_rejected(self, mapper):
        with pytest.raises(AddressError):
            mapper.to_orientation(0, Orientation.GATHER, Orientation.ROW)


class TestValidation:
    def test_out_of_range_row(self, mapper):
        with pytest.raises(AddressError):
            mapper.encode_row(Coordinate(0, 0, 0, 0, RCNVM_GEOMETRY.rows, 0))

    def test_out_of_range_channel(self, mapper):
        with pytest.raises(AddressError):
            mapper.encode_row(Coordinate(2, 0, 0, 0, 0, 0))

    def test_negative_address(self, mapper):
        with pytest.raises(AddressError):
            mapper.decode_row(-1)

    def test_oversized_address(self, mapper):
        with pytest.raises(AddressError):
            mapper.decode_row(1 << 33)

    def test_gather_encode_rejected(self, mapper):
        with pytest.raises(AddressError):
            mapper.encode(Coordinate(0, 0, 0, 0, 0, 0), Orientation.GATHER)


class TestPhysicalIndex:
    def test_physical_index_is_bijective_on_small_geometry(self):
        geometry = Geometry(channels=1, ranks=1, banks=2, subarrays=1, rows=4, cols=4)
        mapper = AddressMapper(geometry)
        seen = set()
        for bank in range(2):
            for row in range(4):
                for col in range(4):
                    for offset in range(8):
                        coord = Coordinate(0, 0, bank, 0, row, col, offset)
                        seen.add(mapper.physical_index(coord))
        assert seen == set(range(geometry.total_bytes))

    def test_subarray_index_matches_coord(self):
        mapper = AddressMapper(SMALL_RCNVM_GEOMETRY)
        coord = Coordinate(1, 0, 3, 1, 10, 20)
        g = SMALL_RCNVM_GEOMETRY
        expected = ((1 * g.ranks + 0) * g.banks + 3) * g.subarrays + 1
        assert mapper.subarray_index(coord) == expected


class TestCoordinate:
    def test_word_aligned_zeroes_offset(self):
        coord = Coordinate(0, 0, 0, 0, 1, 2, offset=5)
        assert coord.word_aligned().offset == 0

    def test_word_aligned_identity(self):
        coord = Coordinate(0, 0, 0, 0, 1, 2, offset=0)
        assert coord.word_aligned() is coord


class TestOrientation:
    def test_opposites(self):
        assert Orientation.ROW.opposite is Orientation.COLUMN
        assert Orientation.COLUMN.opposite is Orientation.ROW

    def test_gather_has_no_opposite(self):
        with pytest.raises(ValueError):
            Orientation.GATHER.opposite
