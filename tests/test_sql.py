"""SQL lexer and parser over the Table 2 grammar."""

import pytest

from repro.errors import SqlError
from repro.imdb.sql_ast import (
    Aggregate,
    ColumnRef,
    Comparison,
    Literal,
    Select,
    Star,
    Update,
)
from repro.imdb.sql_lexer import Token, tokenize
from repro.imdb.sql_parser import parse
from repro.workloads.queries import QUERIES


class TestLexer:
    def test_keywords_case_insensitive(self):
        kinds = [t.kind for t in tokenize("select * from t")]
        assert kinds == ["SELECT", "STAR", "FROM", "IDENT", "EOF"]

    def test_dashed_identifier(self):
        tokens = tokenize("table-a")
        assert tokens[0] == Token("IDENT", "table-a", 0)

    def test_qualified_name_tokens(self):
        kinds = [t.kind for t in tokenize("table-a.f3")]
        assert kinds == ["IDENT", "DOT", "IDENT", "EOF"]

    def test_operators(self):
        texts = [t.text for t in tokenize("a >= 1 AND b <> 2") if t.kind == "OP"]
        assert texts == [">=", "!="]

    def test_negative_number(self):
        tokens = tokenize("x > -5")
        assert ("NUMBER", "-5") in [(t.kind, t.text) for t in tokens]

    def test_semicolon_ignored(self):
        assert tokenize("SELECT * FROM t;")[-1].kind == "EOF"

    def test_bad_character(self):
        with pytest.raises(SqlError):
            tokenize("SELECT ~ FROM t")


class TestSelectParsing:
    def test_star(self):
        ast = parse("SELECT * FROM table-b WHERE f10 > x")
        assert isinstance(ast, Select)
        assert ast.items == (Star(),)
        assert ast.tables == ("table-b",)
        assert ast.where == (
            Comparison(">", ColumnRef("f10"), ColumnRef("x")),
        )

    def test_projection(self):
        ast = parse("SELECT f3, f4 FROM table-a")
        assert ast.items == (ColumnRef("f3"), ColumnRef("f4"))
        assert ast.where == ()

    def test_aggregate(self):
        ast = parse("SELECT SUM(f9) FROM table-a WHERE f10 > 5")
        assert ast.items == (Aggregate("SUM", ColumnRef("f9")),)
        assert ast.where[0].right == Literal(5)

    def test_avg_and_count(self):
        assert parse("SELECT AVG(f1) FROM t").items[0].func == "AVG"
        assert parse("SELECT COUNT(f1) FROM t").items[0].func == "COUNT"

    def test_join_form(self):
        ast = parse(
            "SELECT table-a.f3, table-b.f4 FROM table-a, table-b "
            "WHERE table-a.f1 > table-b.f1 AND table-a.f9 = table-b.f9"
        )
        assert ast.tables == ("table-a", "table-b")
        assert ast.items[0] == ColumnRef("f3", "table-a")
        assert len(ast.where) == 2
        assert ast.where[1].op == "="

    def test_conjunction(self):
        ast = parse("SELECT f1 FROM t WHERE f1 > 1 AND f2 < 2 AND f3 = 3")
        assert [c.op for c in ast.where] == [">", "<", "="]


class TestUpdateParsing:
    def test_update(self):
        ast = parse("UPDATE table-b SET f3 = x, f4 = y WHERE f10 = z")
        assert isinstance(ast, Update)
        assert ast.table == "table-b"
        assert [a.column for a in ast.assignments] == ["f3", "f4"]
        assert ast.where[0].op == "="

    def test_update_with_literal(self):
        ast = parse("UPDATE t SET a = 5")
        assert ast.assignments[0].value == Literal(5)
        assert ast.where == ()

    def test_update_requires_equals(self):
        with pytest.raises(SqlError):
            parse("UPDATE t SET a > 5")


class TestErrors:
    @pytest.mark.parametrize(
        "sql",
        [
            "",
            "DELETE FROM t",
            "SELECT FROM t",
            "SELECT * FROM",
            "SELECT * t",
            "SELECT * FROM t WHERE",
            "SELECT SUM f1 FROM t",
            "SELECT * FROM t extra",
        ],
    )
    def test_rejects(self, sql):
        with pytest.raises(SqlError):
            parse(sql)


class TestRoundTrip:
    @pytest.mark.parametrize("qid", list(QUERIES))
    def test_all_benchmark_queries_parse(self, qid):
        ast = parse(QUERIES[qid].sql)
        assert isinstance(ast, (Select, Update))

    @pytest.mark.parametrize("qid", list(QUERIES))
    def test_str_reparses(self, qid):
        ast = parse(QUERIES[qid].sql)
        assert parse(str(ast)) == ast
