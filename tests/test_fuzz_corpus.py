"""Replay the committed fuzz regression corpus.

Every ``tests/corpus/*.json`` case runs through the full differential
oracle (all system configs, reference engine, sqlite, trace
invariants).  A case that once exposed a bug stays here forever; see
``tests/corpus/README.md`` for the triage workflow.
"""

import json
import pathlib

import pytest

from repro.fuzz import replay_corpus
from repro.fuzz.runner import load_case

CORPUS = pathlib.Path(__file__).parent / "corpus"
CASES = sorted(CORPUS.glob("*.json"))


def test_corpus_is_not_empty():
    assert len(CASES) >= 4


def test_corpus_files_are_loadable_and_normalized():
    for path in CASES:
        case = load_case(path)
        assert case.statements, f"{path.name} has no statements"
        # Files are committed in canonical form so diffs stay readable.
        payload = json.loads(path.read_text())
        canonical = dict(case.to_dict())
        if "problems" in payload:
            canonical["problems"] = payload["problems"]
        assert payload == canonical, f"{path.name} is not in canonical form"
        assert path.read_text().endswith("\n")


def test_replay_corpus_is_clean():
    failures = replay_corpus(CORPUS)
    assert failures == {}, "\n".join(
        f"{name}: {problems}" for name, problems in failures.items()
    )


def test_replay_corpus_with_crashes_is_clean():
    """Kill-and-recover replay: every corpus case also survives a seeded
    crash injector on the durable configs, recovering to sqlite's
    committed-prefix state."""
    from repro.fuzz.crashes import replay_corpus_with_crashes

    failures = replay_corpus_with_crashes(CORPUS, seeds=(0, 1, 2))
    assert failures == {}, "\n".join(
        f"{name}: {problems}" for name, problems in failures.items()
    )


@pytest.mark.parametrize("path", CASES, ids=lambda p: p.stem)
def test_each_case_has_a_note(path):
    case = load_case(path)
    assert case.note, f"{path.name} should say what it regression-tests"
