"""Device timing models and unit conversions."""

import pytest

from repro.errors import ConfigurationError
from repro.memsim.timing import (
    BURST_CYCLES,
    CPU_FREQ_HZ,
    DDR3_1333_DRAM,
    DeviceTiming,
    LPDDR3_800_RCNVM,
    LPDDR3_800_RRAM,
)


class TestTable1Presets:
    def test_dram_parameters(self):
        t = DDR3_1333_DRAM
        assert (t.t_cas, t.t_rcd, t.t_rp, t.t_ras) == (10, 9, 9, 24)
        assert t.write_pulse == 0

    def test_rram_parameters(self):
        t = LPDDR3_800_RRAM
        assert (t.t_cas, t.t_rcd, t.t_rp, t.t_ras) == (6, 10, 1, 0)

    def test_rcnvm_slower_than_rram(self):
        # Table 1: RC-NVM pays the Figure 5 latency overhead (tRCD 12 vs
        # 10, write pulse 15 ns vs 10 ns).
        assert LPDDR3_800_RCNVM.t_rcd > LPDDR3_800_RRAM.t_rcd
        assert LPDDR3_800_RCNVM.write_pulse > LPDDR3_800_RRAM.write_pulse

    def test_dram_access_time_is_about_14ns(self):
        # tRCD + tCAS at 1.5 ns per cycle ~= 28.5? No: Table 1 quotes the
        # array access (tRCD) at ~14 ns.
        ns = DDR3_1333_DRAM.t_rcd * DDR3_1333_DRAM.interface_ns
        assert 12 <= ns <= 15

    def test_rram_read_access_is_about_25ns(self):
        ns = LPDDR3_800_RRAM.t_rcd * LPDDR3_800_RRAM.interface_ns
        assert 24 <= ns <= 26

    def test_rcnvm_read_access_is_about_29ns(self):
        ns = LPDDR3_800_RCNVM.t_rcd * LPDDR3_800_RCNVM.interface_ns
        assert 28 <= ns <= 31


class TestConversions:
    def test_cpu_cycles_dram(self):
        # DDR3-1333 runs at 1/3 the 2 GHz core clock.
        assert DDR3_1333_DRAM.cpu(10) == 30

    def test_cpu_cycles_lpddr(self):
        assert LPDDR3_800_RRAM.cpu(10) == 50

    def test_burst_cpu(self):
        assert DDR3_1333_DRAM.burst_cpu == BURST_CYCLES * 3
        assert LPDDR3_800_RRAM.burst_cpu == BURST_CYCLES * 5

    def test_interface_ns(self):
        assert DDR3_1333_DRAM.interface_ns == pytest.approx(1.5)
        assert LPDDR3_800_RRAM.interface_ns == pytest.approx(2.5)

    def test_cpu_freq(self):
        assert CPU_FREQ_HZ == 2_000_000_000


class TestScaled:
    def test_scaled_matches_base_point(self):
        scaled = LPDDR3_800_RRAM.scaled(25.0, 10.0)
        assert scaled.t_rcd == LPDDR3_800_RRAM.t_rcd
        assert scaled.write_pulse == LPDDR3_800_RRAM.write_pulse

    def test_scaled_doubles(self):
        scaled = LPDDR3_800_RRAM.scaled(50.0, 20.0)
        assert scaled.t_rcd == 20
        assert scaled.write_pulse == 8

    def test_scaled_keeps_other_fields(self):
        scaled = LPDDR3_800_RRAM.scaled(100.0, 40.0)
        assert scaled.t_cas == LPDDR3_800_RRAM.t_cas
        assert scaled.clock_ratio == LPDDR3_800_RRAM.clock_ratio

    def test_scaled_minimum_one_cycle(self):
        scaled = LPDDR3_800_RRAM.scaled(0.1, 0.0)
        assert scaled.t_rcd == 1
        assert scaled.write_pulse == 0


class TestValidation:
    def test_negative_timing_rejected(self):
        with pytest.raises(ConfigurationError):
            DeviceTiming(name="bad", clock_ratio=1.0, t_cas=-1, t_rcd=1, t_rp=1, t_ras=0)

    def test_zero_clock_ratio_rejected(self):
        with pytest.raises(ConfigurationError):
            DeviceTiming(name="bad", clock_ratio=0, t_cas=1, t_rcd=1, t_rp=1, t_ras=0)
