"""Shared fixtures for the test suite.

Everything uses the small geometries (16 MB memories, tiny caches) so the
full suite runs in seconds while preserving every structural property.
"""

import os

import numpy as np
import pytest

try:
    from hypothesis import settings

    # CI runs derandomized with a fixed, larger budget so failures are
    # reproducible from the log alone; local runs keep the faster default.
    settings.register_profile(
        "ci", derandomize=True, max_examples=200, deadline=None
    )
    settings.register_profile("dev", max_examples=25, deadline=None)
    settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))
except ImportError:  # pragma: no cover - hypothesis is optional
    pass

from repro.geometry import SMALL_DRAM_GEOMETRY, SMALL_RCNVM_GEOMETRY
from repro.imdb.database import Database
from repro.memsim.system import (
    make_dram,
    make_gsdram,
    make_rcnvm,
    make_rram,
)

SMALL_CACHES = dict(l1_kib=4, l2_kib=16, l3_kib=64)

SYSTEM_FACTORIES = {
    "DRAM": lambda: make_dram(SMALL_DRAM_GEOMETRY),
    "GS-DRAM": lambda: make_gsdram(SMALL_DRAM_GEOMETRY),
    "RRAM": lambda: make_rram(SMALL_RCNVM_GEOMETRY),
    "RC-NVM": lambda: make_rcnvm(SMALL_RCNVM_GEOMETRY),
}


def make_system(name):
    return SYSTEM_FACTORIES[name]()


def make_database(system_name="RC-NVM", verify=True, **kwargs):
    kwargs.setdefault("cache_config", SMALL_CACHES)
    return Database(make_system(system_name), verify=verify, **kwargs)


def simple_rows(n, fields=4, seed=1, value_range=1000):
    rng = np.random.default_rng(seed)
    data = rng.integers(0, value_range, size=(n, fields))
    return [tuple(int(v) for v in row) for row in data]


@pytest.fixture
def rcnvm_memory():
    return make_system("RC-NVM")


@pytest.fixture
def dram_memory():
    return make_system("DRAM")


@pytest.fixture
def rcnvm_db():
    return make_database("RC-NVM")


@pytest.fixture
def dram_db():
    return make_database("DRAM")


@pytest.fixture(params=["DRAM", "RRAM", "GS-DRAM", "RC-NVM"])
def any_system_name(request):
    return request.param


@pytest.fixture(params=["row", "column"])
def any_layout(request):
    return request.param
