"""Join edge cases: ReferenceEngine._join vs the planned executor.

The fuzz oracle leans on the reference engine as ground truth, so its
join semantics get direct scrutiny here: duplicate keys (many-to-many
multiplicities), an empty build side, rejected combinations
(aggregates, ORDER BY / LIMIT), and inequality extras — each checked
for agreement between reference and executor on every system.
"""

from collections import Counter

import pytest

from conftest import make_database
from repro.errors import SqlError
from repro.imdb.sql_parser import parse

JOIN_SQL = "SELECT l.tag, r.val FROM l, r WHERE l.key = r.key"


def build_join_db(system, left_rows, right_rows, layout="row"):
    db = make_database(system, verify=False)
    db.create_table("l", [("key", 8), ("tag", 8)], layout=layout)
    db.create_table("r", [("key", 8), ("val", 8)], layout=layout)
    if left_rows:
        db.insert_many("l", left_rows)
    if right_rows:
        db.insert_many("r", right_rows)
    return db


def both_results(db, sql, params=None):
    reference = db.reference.execute(parse(sql), params=params)
    executed = db.execute(sql, params=params, simulate=False).result
    return reference, executed


class TestDuplicateKeys:
    # key 7 appears 3x left and 2x right -> 6 output rows for that key.
    LEFT = [(7, 1), (7, 2), (7, 3), (9, 4), (5, 5)]
    RIGHT = [(7, 10), (7, 20), (9, 30), (3, 40)]

    def test_many_to_many_multiplicities(self, any_system_name):
        db = build_join_db(any_system_name, self.LEFT, self.RIGHT)
        reference, executed = both_results(db, JOIN_SQL)
        expected = Counter(
            (tag, val)
            for key, tag in self.LEFT
            for rkey, val in self.RIGHT
            if key == rkey
        )
        assert Counter(reference.rows) == expected
        assert Counter(executed.rows) == expected
        assert len(reference.rows) == 3 * 2 + 1

    def test_self_multiplicity_with_extra(self, any_system_name):
        db = build_join_db(any_system_name, self.LEFT, self.RIGHT)
        sql = JOIN_SQL + " AND l.tag < r.val"
        reference, executed = both_results(db, sql)
        expected = Counter(
            (tag, val)
            for key, tag in self.LEFT
            for rkey, val in self.RIGHT
            if key == rkey and tag < val
        )
        assert Counter(reference.rows) == expected
        assert Counter(executed.rows) == expected


class TestEmptySides:
    def test_empty_build_side(self, any_system_name):
        db = build_join_db(any_system_name, [(1, 2), (3, 4)], [])
        reference, executed = both_results(db, JOIN_SQL)
        assert reference.rows == []
        assert executed.rows == []

    def test_empty_probe_side(self, any_system_name):
        db = build_join_db(any_system_name, [], [(1, 2), (3, 4)])
        reference, executed = both_results(db, JOIN_SQL)
        assert reference.rows == []
        assert executed.rows == []

    def test_no_matching_keys(self, any_system_name):
        db = build_join_db(any_system_name, [(1, 2)], [(9, 8)])
        reference, executed = both_results(db, JOIN_SQL)
        assert reference.rows == []
        assert executed.rows == []


class TestRejectedCombinations:
    """Planner and reference must refuse the same statements, both with
    SqlError — a statement one engine rejects and the other answers
    would show up as a fuzz discrepancy."""

    REJECTS = [
        "SELECT SUM(l.tag) FROM l, r WHERE l.key = r.key",
        JOIN_SQL + " ORDER BY tag",
        JOIN_SQL + " LIMIT 3",
        JOIN_SQL + " ORDER BY tag LIMIT 3",
        # Unqualified output column in a join.
        "SELECT tag FROM l, r WHERE l.key = r.key",
        # Output names a table not in FROM.
        "SELECT x.tag, r.val FROM l, r WHERE l.key = r.key",
        # Predicate against a literal instead of a qualified column pair.
        "SELECT l.tag, r.val FROM l, r WHERE l.key = r.key AND l.tag > 3",
        # No equality key at all.
        "SELECT l.tag, r.val FROM l, r WHERE l.key > r.key",
    ]

    @pytest.mark.parametrize("sql", REJECTS)
    def test_rejected_by_both_engines(self, sql):
        db = build_join_db("RC-NVM", [(1, 2)], [(1, 3)])
        with pytest.raises(SqlError):
            db.reference.execute(parse(sql))
        with pytest.raises(SqlError):
            db.execute(sql, simulate=False)


class TestLayoutsAgree:
    def test_row_and_column_layouts_match(self, any_layout):
        left = [(k % 4, 100 + k) for k in range(17)]
        right = [(k % 3, 200 + k) for k in range(11)]
        db = build_join_db("RC-NVM", left, right, layout=any_layout)
        sql = JOIN_SQL + " AND l.tag != r.val"
        reference, executed = both_results(db, sql)
        assert Counter(executed.rows) == Counter(reference.rows)
        assert len(reference.rows) > 0
