"""FR-FCFS channel controller: scheduling, bus contention, statistics."""

import pytest

from repro.core.addressing import Orientation
from repro.geometry import SMALL_RCNVM_GEOMETRY
from repro.memsim.controller import ChannelController
from repro.memsim.request import MemRequest
from repro.memsim.timing import LPDDR3_800_RCNVM


def request(row=0, col=0, bank=0, rank=0, subarray=0,
            orientation=Orientation.ROW, is_write=False, arrival=0):
    return MemRequest(
        channel=0, rank=rank, bank=bank, subarray=subarray, row=row, col=col,
        orientation=orientation, is_write=is_write, arrival=arrival,
    )


@pytest.fixture
def controller():
    return ChannelController(
        SMALL_RCNVM_GEOMETRY, LPDDR3_800_RCNVM, supports_column=True, queue_depth=8
    )


class TestScheduling:
    def test_completion_of_submitted(self, controller):
        req = request(row=1)
        controller.submit(req)
        completion = controller.completion_of(req)
        assert completion > 0
        assert req.completion == completion

    def test_unsubmitted_raises(self, controller):
        with pytest.raises(LookupError):
            controller.completion_of(request())

    def test_fr_fcfs_prefers_open_row(self, controller):
        # Open row 1, then queue a conflicting request followed by a
        # row-hit request: the hit should be serviced first.
        opener = request(row=1, col=0)
        controller.submit(opener)
        controller.completion_of(opener)
        conflict = request(row=2, col=0)
        hit = request(row=1, col=1)
        controller.submit(conflict)
        controller.submit(hit)
        controller.drain()
        assert hit.completion < conflict.completion

    def test_fcfs_among_misses(self, controller):
        first = request(row=5)
        second = request(row=6)
        controller.submit(first)
        controller.submit(second)
        controller.drain()
        assert first.completion < second.completion

    def test_queue_overflow_triggers_scheduling(self, controller):
        requests = [request(row=i) for i in range(12)]
        for req in requests:
            controller.submit(req)
        # More than queue_depth submitted: the oldest must have been
        # scheduled already.
        assert requests[0].completion is not None
        assert len(controller.pending) <= controller.queue_depth

    def test_drain_completes_everything(self, controller):
        requests = [request(row=i) for i in range(5)]
        for req in requests:
            controller.submit(req)
        controller.drain()
        assert all(req.completion is not None for req in requests)
        assert not controller.pending


class TestTiming:
    def test_bus_serializes_row_hits(self, controller):
        opener = request(row=1, col=0)
        controller.submit(opener)
        controller.completion_of(opener)
        hits = [request(row=1, col=c) for c in range(1, 9)]
        for req in hits:
            controller.submit(req)
        controller.drain()
        burst = LPDDR3_800_RCNVM.burst_cpu
        completions = [req.completion for req in hits]
        gaps = [b - a for a, b in zip(completions, completions[1:])]
        assert all(gap >= burst for gap in gaps)

    def test_bank_parallelism_beats_single_bank(self):
        def total_time(banks):
            controller = ChannelController(
                SMALL_RCNVM_GEOMETRY, LPDDR3_800_RCNVM, True, queue_depth=32
            )
            reqs = [request(row=i, bank=(i % banks)) for i in range(16)]
            for req in reqs:
                controller.submit(req)
            return controller.drain()

        assert total_time(banks=4) < total_time(banks=1)

    def test_completion_monotone_per_bus(self, controller):
        reqs = [request(row=i % 3, col=i, bank=i % 2) for i in range(20)]
        for req in reqs:
            controller.submit(req)
        controller.drain()
        completions = sorted(req.completion for req in reqs)
        # The bus transfers 64 bytes per burst; completions can never be
        # closer together than one burst.
        for a, b in zip(completions, completions[1:]):
            assert b - a >= LPDDR3_800_RCNVM.burst_cpu


class TestStatistics:
    def test_read_write_counts(self, controller):
        controller.submit(request(row=1))
        controller.submit(request(row=1, col=2, is_write=True))
        controller.drain()
        assert controller.stats.reads == 1
        assert controller.stats.writes == 1

    def test_orientation_counts(self, controller):
        controller.submit(request(row=1))
        controller.submit(request(col=1, orientation=Orientation.COLUMN))
        controller.submit(request(row=2, orientation=Orientation.GATHER))
        controller.drain()
        stats = controller.stats
        assert (stats.row_oriented, stats.col_oriented, stats.gathers) == (1, 1, 1)

    def test_bus_busy_accumulates(self, controller):
        for i in range(4):
            controller.submit(request(row=1, col=i))
        controller.drain()
        assert controller.stats.bus_busy_cycles == 4 * LPDDR3_800_RCNVM.burst_cpu

    def test_miss_rate(self, controller):
        controller.submit(request(row=1, col=0))
        controller.submit(request(row=1, col=1))
        controller.submit(request(row=2, col=0))
        controller.drain()
        assert controller.stats.buffer_miss_rate == pytest.approx(2 / 3)

    def test_reset(self, controller):
        controller.submit(request(row=1))
        controller.drain()
        controller.reset()
        assert controller.stats.accesses == 0
        assert controller.bus_free == 0
        assert all(bank.open_kind is None for bank in controller.banks)
