"""FR-FCFS channel controller: scheduling, bus contention, statistics."""

import pytest

from repro.core.addressing import Orientation
from repro.geometry import SMALL_RCNVM_GEOMETRY
from repro.memsim.controller import ChannelController
from repro.memsim.request import MemRequest
from repro.memsim.timing import LPDDR3_800_RCNVM


def request(row=0, col=0, bank=0, rank=0, subarray=0,
            orientation=Orientation.ROW, is_write=False, arrival=0):
    return MemRequest(
        channel=0, rank=rank, bank=bank, subarray=subarray, row=row, col=col,
        orientation=orientation, is_write=is_write, arrival=arrival,
    )


@pytest.fixture
def controller():
    return ChannelController(
        SMALL_RCNVM_GEOMETRY, LPDDR3_800_RCNVM, supports_column=True, queue_depth=8
    )


class TestScheduling:
    def test_completion_of_submitted(self, controller):
        req = request(row=1)
        controller.submit(req)
        completion = controller.completion_of(req)
        assert completion > 0
        assert req.completion == completion

    def test_unsubmitted_raises(self, controller):
        with pytest.raises(LookupError):
            controller.completion_of(request())

    def test_fr_fcfs_prefers_open_row(self, controller):
        # Open row 1, then queue a conflicting request followed by a
        # row-hit request: the hit should be serviced first.
        opener = request(row=1, col=0)
        controller.submit(opener)
        controller.completion_of(opener)
        conflict = request(row=2, col=0)
        hit = request(row=1, col=1)
        controller.submit(conflict)
        controller.submit(hit)
        controller.drain()
        assert hit.completion < conflict.completion

    def test_fcfs_among_misses(self, controller):
        first = request(row=5)
        second = request(row=6)
        controller.submit(first)
        controller.submit(second)
        controller.drain()
        assert first.completion < second.completion

    def test_queue_overflow_triggers_scheduling(self, controller):
        requests = [request(row=i) for i in range(12)]
        for req in requests:
            controller.submit(req)
        # More than queue_depth submitted: the oldest must have been
        # scheduled already.
        assert requests[0].completion is not None
        assert len(controller.pending) <= controller.queue_depth

    def test_drain_completes_everything(self, controller):
        requests = [request(row=i) for i in range(5)]
        for req in requests:
            controller.submit(req)
        controller.drain()
        assert all(req.completion is not None for req in requests)
        assert not controller.pending


class TestTiming:
    def test_bus_serializes_row_hits(self, controller):
        opener = request(row=1, col=0)
        controller.submit(opener)
        controller.completion_of(opener)
        hits = [request(row=1, col=c) for c in range(1, 9)]
        for req in hits:
            controller.submit(req)
        controller.drain()
        burst = LPDDR3_800_RCNVM.burst_cpu
        completions = [req.completion for req in hits]
        gaps = [b - a for a, b in zip(completions, completions[1:])]
        assert all(gap >= burst for gap in gaps)

    def test_bank_parallelism_beats_single_bank(self):
        def total_time(banks):
            controller = ChannelController(
                SMALL_RCNVM_GEOMETRY, LPDDR3_800_RCNVM, True, queue_depth=32
            )
            reqs = [request(row=i, bank=(i % banks)) for i in range(16)]
            for req in reqs:
                controller.submit(req)
            return controller.drain()

        assert total_time(banks=4) < total_time(banks=1)

    def test_completion_monotone_per_bus(self, controller):
        reqs = [request(row=i % 3, col=i, bank=i % 2) for i in range(20)]
        for req in reqs:
            controller.submit(req)
        controller.drain()
        completions = sorted(req.completion for req in reqs)
        # The bus transfers 64 bytes per burst; completions can never be
        # closer together than one burst.
        for a, b in zip(completions, completions[1:]):
            assert b - a >= LPDDR3_800_RCNVM.burst_cpu


class TestStatistics:
    def test_read_write_counts(self, controller):
        controller.submit(request(row=1))
        controller.submit(request(row=1, col=2, is_write=True))
        controller.drain()
        assert controller.stats.reads == 1
        assert controller.stats.writes == 1

    def test_orientation_counts(self, controller):
        controller.submit(request(row=1))
        controller.submit(request(col=1, orientation=Orientation.COLUMN))
        controller.submit(request(row=2, orientation=Orientation.GATHER))
        controller.drain()
        stats = controller.stats
        assert (stats.row_oriented, stats.col_oriented, stats.gathers) == (1, 1, 1)

    def test_bus_busy_accumulates(self, controller):
        for i in range(4):
            controller.submit(request(row=1, col=i))
        controller.drain()
        assert controller.stats.bus_busy_cycles == 4 * LPDDR3_800_RCNVM.burst_cpu

    def test_miss_rate(self, controller):
        controller.submit(request(row=1, col=0))
        controller.submit(request(row=1, col=1))
        controller.submit(request(row=2, col=0))
        controller.drain()
        assert controller.stats.buffer_miss_rate == pytest.approx(2 / 3)

    def test_reset(self, controller):
        controller.submit(request(row=1))
        controller.drain()
        controller.reset()
        assert controller.stats.accesses == 0
        assert controller.bus_free == 0
        assert all(bank.open_kind is None for bank in controller.banks)

    def test_latency_histogram_tracks_every_access(self, controller):
        for i in range(6):
            controller.submit(request(row=i, col=i))
        controller.drain()
        stats = controller.stats
        assert stats.latency_hist.count == stats.accesses == 6
        assert stats.latency_p50 <= stats.latency_p95 <= stats.latency_p99

    def test_occupancy_telemetry(self, controller):
        for i in range(5):
            controller.submit(request(row=i))
        controller.drain()
        stats = controller.stats
        assert stats.queue_occupancy_samples == 5
        assert stats.max_queue_occupancy == 5
        assert stats.max_bank_queue_occupancy == 5  # all to bank 0
        assert stats.avg_queue_occupancy == pytest.approx(3.0)  # mean of 1..5


def make_controller(**kwargs):
    kwargs.setdefault("queue_depth", 8)
    return ChannelController(
        SMALL_RCNVM_GEOMETRY, LPDDR3_800_RCNVM, supports_column=True, **kwargs
    )


class TestValidation:
    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            make_controller(policy="lru")

    def test_unknown_page_policy_rejected(self):
        with pytest.raises(ValueError):
            make_controller(page_policy="half-open")

    def test_bad_watermarks_rejected(self):
        with pytest.raises(ValueError):
            make_controller(drain_high=0.2, drain_low=0.5)

    def test_bad_age_cap_rejected(self):
        with pytest.raises(ValueError):
            make_controller(age_cap=0)

    def test_bad_queue_depths_rejected(self):
        with pytest.raises(ValueError):
            make_controller(queue_depth=0)
        with pytest.raises(ValueError):
            make_controller(write_queue_depth=0)


class TestWriteDraining:
    def test_reads_bypass_buffered_writes(self):
        controller = make_controller(write_queue_depth=16)
        writes = [request(row=i, is_write=True, arrival=i) for i in range(4)]
        for req in writes:
            controller.submit(req)
        read = request(row=9, arrival=10)
        controller.submit(read)
        controller.completion_of(read)
        # The read resolved while all four writes stayed posted.
        assert all(w.completion is None for w in writes)
        controller.drain()
        assert all(w.completion is not None for w in writes)

    def test_high_watermark_triggers_drain_episode(self):
        controller = make_controller(write_queue_depth=8, drain_high=0.5,
                                     drain_low=0.25)
        reads = [request(row=i, arrival=0) for i in range(3)]
        for req in reads:
            controller.submit(req)
        for i in range(4):  # reaches the high watermark (4 = 8 * 0.5)
            controller.submit(request(row=i, bank=1, is_write=True, arrival=0))
        controller.drain()
        assert controller.stats.write_drain_episodes == 1

    def test_drain_runs_down_to_low_watermark(self):
        controller = make_controller(write_queue_depth=8, drain_high=0.5,
                                     drain_low=0.25)
        for i in range(4):
            controller.submit(request(row=i, is_write=True, arrival=0))
        read = request(row=9, arrival=0)
        controller.submit(read)
        controller.completion_of(read)
        # The drain episode serviced writes until occupancy <= 2 before the
        # scheduler returned to reads.
        assert controller.writes_pending <= 2

    def test_fcfs_never_buffers_writes(self):
        controller = make_controller(policy="fcfs")
        write = request(row=1, is_write=True, arrival=0)
        read = request(row=2, arrival=1)
        controller.submit(write)
        controller.submit(read)
        controller.completion_of(read)
        assert write.completion is not None
        assert write.completion < read.completion


class TestStarvationAgeCap:
    def test_age_cap_bounds_bypasses(self):
        cap = 3
        controller = make_controller(age_cap=cap, queue_depth=32)
        opener = request(row=1, col=0)
        controller.submit(opener)
        controller.completion_of(opener)
        victim = request(row=2, col=0)
        controller.submit(victim)
        hits = [request(row=1, col=c + 1) for c in range(16)]
        for req in hits:
            controller.submit(req)
        controller.drain()
        served_first = sum(1 for h in hits if h.completion < victim.completion)
        assert served_first == cap
        assert controller.stats.starvation_cap_hits >= 1
        assert controller.stats.max_bypass <= cap


class TestPagePolicies:
    def test_closed_policy_precharges_after_every_access(self):
        controller = make_controller(page_policy="closed")
        for i in range(3):
            controller.submit(request(row=4, col=i))
        controller.drain()
        stats = controller.stats
        assert stats.buffer_hits == 0
        assert stats.buffer_closes == 3
        assert all(bank.open_kind is None for bank in controller.banks)

    def test_open_policy_never_closes(self):
        controller = make_controller(page_policy="open")
        for i in range(3):
            controller.submit(request(row=4, col=i))
        controller.drain()
        assert controller.stats.buffer_closes == 0
        assert controller.stats.buffer_hits == 2

    def test_adaptive_stays_open_on_hits(self):
        controller = make_controller(page_policy="adaptive", adaptive_threshold=2)
        for i in range(6):
            controller.submit(request(row=4, col=i))
        controller.drain()
        assert controller.stats.buffer_closes == 0
        assert controller.stats.buffer_hits == 5

    def test_adaptive_closes_after_conflict_streak(self):
        controller = make_controller(page_policy="adaptive", adaptive_threshold=2)
        reqs = [request(row=i % 5) for i in range(8)]
        for req in reqs:
            controller.submit(req)
            controller.completion_of(req)
        stats = controller.stats
        # After two conflicts the bank flips to closed-page behaviour:
        # conflicts stop accruing and closes start.
        assert stats.buffer_closes >= 4
        assert stats.buffer_conflicts == 2

    def test_adaptive_reopens_when_locality_returns(self):
        controller = make_controller(page_policy="adaptive", adaptive_threshold=2)
        trace = [request(row=i % 5) for i in range(6)]  # drive into closed mode
        trace += [request(row=7, col=c) for c in range(6)]  # streaming again
        for req in trace:
            controller.submit(req)
            controller.completion_of(req)
        # The second access to row 7 found it just closed, snapped back to
        # open-page mode, and the rest of the stream hit.
        assert controller.stats.buffer_hits >= 4

    def test_orientation_switch_counts_double(self):
        controller = make_controller(page_policy="adaptive", adaptive_threshold=2)
        first = request(row=3, col=3, orientation=Orientation.ROW)
        second = request(row=3, col=3, orientation=Orientation.COLUMN)
        for req in (first, second):
            controller.submit(req)
            controller.completion_of(req)
        # One switch conflict (weight 2) already reaches the threshold.
        assert controller.stats.buffer_closes == 1


class TestDrainWatermarkClamp:
    def test_low_watermark_clamped_below_high(self):
        # Regression: depth 4 with drain_high = drain_low = 0.75 used to
        # give both watermarks count 3, so every drain episode exited
        # after a single write and write_drain_episodes inflated.
        controller = make_controller(write_queue_depth=4, drain_high=0.75,
                                     drain_low=0.75)
        assert controller.drain_high_count == 3
        assert controller.drain_low_count == 2

    def test_degenerate_depth_one_drains_to_empty(self):
        controller = make_controller(write_queue_depth=1, drain_high=1.0,
                                     drain_low=1.0)
        assert controller.drain_high_count == 1
        assert controller.drain_low_count == 0

    def test_colliding_watermarks_drain_in_one_episode(self):
        controller = make_controller(write_queue_depth=4, drain_high=0.25,
                                     drain_low=0.25)
        write = request(row=1, is_write=True, arrival=0)
        read = request(row=2, arrival=0)
        controller.submit(write)
        controller.submit(read)
        controller.completion_of(read)
        # One episode drains past the (clamped-to-zero) low watermark and
        # serves the write before the read; the old degenerate exit left
        # the write posted while re-counting an episode per pick.
        assert controller.stats.write_drain_episodes == 1
        assert write.completion is not None
        assert write.completion < read.completion


class TestWriteCoalescing:
    def test_same_entry_writes_merge(self):
        controller = make_controller(write_coalescing=True)
        first = request(row=1, col=0, is_write=True, arrival=0)
        second = request(row=1, col=1, is_write=True, arrival=1)
        controller.submit(first)
        controller.submit(second)
        assert controller.writes_pending == 1  # absorbed, no queue slot
        controller.drain()
        stats = controller.stats
        assert stats.writes == 2  # both still count as accesses
        assert stats.writes_coalesced == 1
        assert stats.buffer_hits == 1  # the absorbed write rides the buffer
        assert second.completion is not None
        assert stats.check_conservation() == []

    def test_different_rows_never_merge(self):
        controller = make_controller(write_coalescing=True)
        controller.submit(request(row=1, is_write=True))
        controller.submit(request(row=2, is_write=True))
        assert controller.writes_pending == 2
        controller.drain()
        assert controller.stats.writes_coalesced == 0

    def test_different_streams_never_merge(self):
        controller = make_controller(write_coalescing=True)
        first = request(row=1, col=0, is_write=True)
        second = request(row=1, col=1, is_write=True)
        second.stream = 7
        controller.submit(first)
        controller.submit(second)
        assert controller.writes_pending == 2
        controller.drain()
        assert controller.stats.writes_coalesced == 0

    def test_disabled_by_default(self):
        controller = make_controller()
        controller.submit(request(row=1, col=0, is_write=True))
        controller.submit(request(row=1, col=1, is_write=True))
        assert controller.writes_pending == 2
        controller.drain()
        assert controller.stats.writes_coalesced == 0

    def test_absorbed_write_never_completes_before_arrival(self):
        controller = make_controller(write_coalescing=True)
        survivor = request(row=1, col=0, is_write=True, arrival=0)
        late = request(row=1, col=1, is_write=True, arrival=10**9)
        controller.submit(survivor)
        controller.submit(late)
        controller.drain()
        assert late.completion >= late.arrival
        assert controller.stats.check_conservation() == []

    def test_coalescing_saves_write_pulses(self):
        # The end-to-end wear claim at controller scale: duplicate writes
        # held in a shallow queue force an extra drain episode without
        # coalescing, and the episode's dirty buffer is closed (one write
        # pulse) by the interleaved read before the duplicate re-dirties
        # the row (a second pulse on the final flush).  Coalescing merges
        # the duplicates up front: one dirty episode, one pulse.
        def run(coalescing):
            controller = make_controller(write_queue_depth=4, drain_high=0.5,
                                         drain_low=0.25,
                                         write_coalescing=coalescing)
            controller.submit(request(row=1, col=0, is_write=True, arrival=0))
            controller.submit(request(row=1, col=1, is_write=True, arrival=0))
            first_read = request(row=2, arrival=0)
            controller.submit(first_read)
            controller.completion_of(first_read)
            second_read = request(row=3, arrival=0)
            controller.submit(second_read)
            controller.completion_of(second_read)
            controller.drain()
            controller.flush_all()
            assert controller.stats.check_conservation() == []
            return controller.stats

        base = run(False)
        merged = run(True)
        assert base.write_pulses == 2
        assert merged.write_pulses == 1
        assert merged.writes_coalesced == 1
        assert base.writes == merged.writes


class TestReadAroundWrite:
    def _draining_controller(self, **kwargs):
        """A controller mid-drain with row 1 open and dirty-prone writes
        queued behind it, plus a read hitting the open row."""
        controller = make_controller(write_queue_depth=4, drain_high=0.5,
                                     drain_low=0.25, **kwargs)
        opener = request(row=1, col=0)
        controller.submit(opener)
        controller.completion_of(opener)  # row 1 now open
        for i in range(2, 6):  # crosses the high watermark (2 = 4 * 0.5)
            controller.submit(request(row=i, is_write=True, arrival=0))
        hit = request(row=1, col=1, arrival=0)
        controller.submit(hit)
        return controller, hit

    def test_buffer_hit_read_preempts_drain(self):
        controller, hit = self._draining_controller(read_around_write=True)
        controller.completion_of(hit)
        stats = controller.stats
        assert stats.read_around_writes >= 1
        # The read was served as a buffer hit: the drain had not yet
        # closed row 1 when it issued.
        assert stats.buffer_hits >= 1
        drained_before_hit = sum(
            1 for req in controller.pending if req.is_write
        )
        assert drained_before_hit > 0  # drain still has work left
        controller.drain()
        assert stats.check_conservation() == []

    def test_disabled_by_default_drain_closes_the_row(self):
        controller, hit = self._draining_controller()
        controller.completion_of(hit)
        stats = controller.stats
        assert stats.read_around_writes == 0
        # The drain ran first and a write conflicted row 1 away, so the
        # read came back a conflict, not a hit.
        assert stats.buffer_hits == 0
        controller.drain()
        assert stats.check_conservation() == []

    def test_bypasses_bounded_by_age_cap(self):
        cap = 2
        controller = make_controller(write_queue_depth=4, drain_high=0.5,
                                     drain_low=0.25, age_cap=cap,
                                     read_around_write=True)
        opener = request(row=1, col=0)
        controller.submit(opener)
        controller.completion_of(opener)
        for i in range(2, 8):
            controller.submit(request(row=i, is_write=True, arrival=0))
        hits = [request(row=1, col=c, arrival=0) for c in range(1, 7)]
        for req in hits:
            controller.submit(req)
        controller.drain()
        # One drain episode ran; at most age_cap picks went to reads.
        assert controller.stats.read_around_writes <= cap
        assert controller.stats.check_conservation() == []
