"""MIN/MAX aggregates, ORDER BY, LIMIT — parsing through execution."""

import pytest

from conftest import make_database, simple_rows
from repro.errors import SqlError
from repro.imdb.sql_ast import OrderBy
from repro.imdb.sql_parser import parse


def loaded_db(system="RC-NVM", n=400):
    db = make_database(system, verify=True)
    layout = "column" if db.memory.supports_column else "row"
    db.create_table("t", [("a", 8), ("b", 8), ("c", 8)], layout=layout)
    db.insert_many("t", simple_rows(n, 3, seed=11))
    return db


class TestParsing:
    def test_order_by(self):
        ast = parse("SELECT a FROM t ORDER BY a")
        assert ast.order_by == OrderBy(ast.items[0], descending=False)

    def test_order_by_desc(self):
        assert parse("SELECT a FROM t ORDER BY a DESC").order_by.descending

    def test_order_by_asc_explicit(self):
        assert not parse("SELECT a FROM t ORDER BY a ASC").order_by.descending

    def test_limit(self):
        assert parse("SELECT a FROM t LIMIT 5").limit == 5

    def test_order_and_limit_roundtrip(self):
        sql = "SELECT a, b FROM t WHERE c > 1 ORDER BY b DESC LIMIT 3"
        ast = parse(sql)
        assert parse(str(ast)) == ast

    def test_negative_limit_rejected(self):
        with pytest.raises(SqlError):
            parse("SELECT a FROM t LIMIT -1")

    def test_min_max_parse(self):
        assert parse("SELECT MIN(a) FROM t").items[0].func == "MIN"
        assert parse("SELECT MAX(a) FROM t").items[0].func == "MAX"


class TestMinMax:
    @pytest.mark.parametrize("system", ["RC-NVM", "DRAM"])
    def test_min_max_match_reference(self, system):
        db = loaded_db(system)
        low = db.execute("SELECT MIN(b) FROM t WHERE a > 500", simulate=False)
        high = db.execute("SELECT MAX(b) FROM t WHERE a > 500", simulate=False)
        assert low.result.value <= high.result.value

    def test_empty_selection(self):
        db = loaded_db()
        outcome = db.execute("SELECT MIN(a) FROM t WHERE a > 100000", simulate=False)
        assert outcome.result.value is None


class TestOrderBy:
    def test_rows_sorted_ascending(self):
        db = loaded_db()
        outcome = db.execute("SELECT a, b FROM t WHERE c > 500 ORDER BY a")
        values = [row[0] for row in outcome.result.rows]
        assert values == sorted(values)
        assert outcome.result.ordered

    def test_rows_sorted_descending(self):
        db = loaded_db()
        outcome = db.execute("SELECT a, b FROM t ORDER BY b DESC")
        values = [row[1] for row in outcome.result.rows]
        assert values == sorted(values, reverse=True)

    def test_star_order(self):
        db = loaded_db()
        outcome = db.execute("SELECT * FROM t WHERE a > 900 ORDER BY c")
        values = [row[2] for row in outcome.result.rows]
        assert values == sorted(values)

    def test_order_column_must_be_projected(self):
        db = loaded_db()
        with pytest.raises(SqlError):
            db.plan("SELECT a FROM t ORDER BY b")

    def test_order_on_aggregate_rejected(self):
        db = loaded_db()
        with pytest.raises(SqlError):
            db.plan("SELECT SUM(a) FROM t ORDER BY a")

    def test_order_on_join_rejected(self):
        db = loaded_db()
        db.create_table("u", [("a", 8)], layout="column")
        db.insert_many("u", [(1,)])
        with pytest.raises(SqlError):
            db.plan("SELECT t.a, u.a FROM t, u WHERE t.a = u.a ORDER BY t.a")

    def test_order_on_wide_field_rejected(self):
        db = make_database("RC-NVM", verify=False)
        db.create_table("w", [("k", 8), ("wide", 16)], layout="column")
        db.insert_many("w", [(1, (2, 3))])
        with pytest.raises(SqlError):
            db.plan("SELECT wide FROM w ORDER BY wide")


class TestLimit:
    def test_limit_caps_rows(self):
        db = loaded_db()
        outcome = db.execute("SELECT a FROM t WHERE b > 100 LIMIT 7")
        assert len(outcome.result.rows) == 7

    def test_limit_zero(self):
        db = loaded_db()
        outcome = db.execute("SELECT a FROM t LIMIT 0", simulate=False)
        assert outcome.result.rows == []

    def test_limit_larger_than_result(self):
        db = loaded_db(n=50)
        outcome = db.execute("SELECT a FROM t LIMIT 500", simulate=False)
        assert len(outcome.result.rows) == 50

    def test_limit_pushdown_cuts_row_fetch_traffic(self):
        db = loaded_db("DRAM", n=400)
        full = db.execute("SELECT a, b FROM t WHERE c > 900")
        limited = db.execute("SELECT a, b FROM t WHERE c > 900 LIMIT 3")
        # ROW-fetch path on DRAM: fetching 3 tuples beats fetching ~40.
        assert limited.trace_length < full.trace_length

    def test_order_then_limit_takes_top(self):
        db = loaded_db()
        outcome = db.execute("SELECT a FROM t ORDER BY a DESC LIMIT 3")
        all_values = sorted(
            (int(v) for v in db.table("t").field_values("a")), reverse=True
        )
        assert [row[0] for row in outcome.result.rows] == all_values[:3]
